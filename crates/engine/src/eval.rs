//! Bottom-up evaluation: `T_P`, naive and semi-naive fixpoints, and the
//! iterated minimal-model construction.
//!
//! For each program component (in dependency order, Section 6.3) the
//! engine iterates `J ← J ⊔ T_P(J, I)` from `J_∅`. For monotonic programs
//! this inflationary iteration converges to the least fixpoint of `T_P`
//! (Tarski / Proposition 3.3), i.e. the component's unique minimal model.
//!
//! The **semi-naive** strategy tracks the *delta* — keys that appeared or
//! whose cost strictly grew in `⊑` — and re-fires a rule only from
//! occurrences of changed atoms: positive body atoms are re-joined seeded
//! by the delta tuple, and aggregates are re-evaluated only for the
//! affected grouping bindings (derived by matching the delta tuple against
//! the aggregate's conjunct). This is the lattice generalization of
//! classical semi-naive evaluation and is benchmarked against naive
//! iteration as an ablation.

use crate::aggregate;
use crate::edb::Edb;
use crate::error::EvalError;
use crate::events::{EventSink, InsertOutcome, NoopSink};
use crate::interp::{Interp, Sig, Tuple};
use crate::model::Model;
use crate::plan::{plan_rule, prem_rewrites, Optimize, Plan, Rewrites, Step};
use crate::provenance::{
    select_witnesses, AggWitness, BodyAtom, Capture, Goal, NoCapture, Provenance,
    ProvenanceTracker, RuleProbe, WhyNotReport,
};
use crate::value::{RuntimeDomain, Value};
use maglog_analysis::{check_program, derivation_cone, key_arity, uniform_binding};
use maglog_datalog::graph::{components, Component};
use maglog_datalog::{
    AggEq, AggFunc, Atom, BinOp, CmpOp, Const, Expr, Literal, Pred, Program, Rule, Term, Var,
};
use crate::par::{self, FireTally};
use crate::trace::{NameRef, Ph, Tracer, MAIN_LANE};
use std::cell::Cell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{mpsc, Arc, RwLock};
use std::time::Instant;

/// Per-round dedup of aggregate-driver re-evaluations: one entry per
/// (rule index, driver discriminator, seed binding).
type SeenSeeds = HashSet<(usize, u64, Vec<(Var, Value)>)>;

/// Per-predicate emit-time demand filter: (key position, demanded
/// constant). Only predicates of the goal's component appear.
type DemandFilter = HashMap<Pred, (usize, Value)>;

/// The runtime demand restriction derived from a point query
/// ([`MonotonicEngine::evaluate_goal`] under `--optimize=demand`).
struct DemandPlan {
    /// Predicates the goal transitively depends on; components disjoint
    /// from the cone are skipped.
    cone: BTreeSet<Pred>,
    /// Constant filters applied at emit time within the goal's component.
    filter: DemandFilter,
    /// Human-readable decision line for stats and profile output.
    decision: String,
}

/// Fixpoint strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-fire every rule fully each round.
    Naive,
    /// Delta-driven re-firing.
    #[default]
    SemiNaive,
    /// Best-first (Dijkstra-style) settling for *cost-inflationary*
    /// `min_real` components — the greedy technique of Ganguly, Greco &
    /// Zaniolo that Section 7 discusses. Candidate derivations are kept in
    /// a priority queue ordered by cost; the least is settled first and
    /// each key settles exactly once, so zero-weight cycles terminate in
    /// one pass and no dominated tuple is ever expanded. Components that
    /// are not eligible (non-`min_real` CDB domains, non-`min` recursive
    /// aggregates, non-cost CDB predicates) fall back to semi-naive;
    /// instances that violate the inflation assumption at runtime (a
    /// derivation cheaper than the settling frontier — negative weights)
    /// abort with [`EvalError::GreedyViolation`].
    Greedy,
}

impl Strategy {
    /// Stable lowercase name, used by profile reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "seminaive",
            Strategy::Greedy => "greedy",
        }
    }

    /// Parse a CLI strategy name (the inverse of [`Strategy::name`]).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "naive" => Some(Strategy::Naive),
            "seminaive" | "semi-naive" => Some(Strategy::SemiNaive),
            "greedy" => Some(Strategy::Greedy),
            _ => None,
        }
    }
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    pub strategy: Strategy,
    /// Cap on fixpoint rounds per component (Section 6.2: termination is
    /// only guaranteed on well-founded cost descents).
    pub max_rounds: usize,
    /// Detect cost conflicts within a `T_P` application (Definition 2.6).
    /// When false, conflicting derivations are resolved by the lattice
    /// join instead of erroring.
    pub check_consistency: bool,
    /// Skip the static certification gate (range restriction,
    /// conflict-freedom, admissibility). The fixpoint of a non-monotonic
    /// program — if it terminates — is *some* pre-model, not necessarily
    /// the least one.
    pub allow_unchecked: bool,
    /// Opt-in optimizing rewrites, each applied only where its static
    /// proof (premappability, uniform stable binding) succeeds. The
    /// computed model is identical with or without them.
    pub optimize: Optimize,
    /// Worker threads for the sharded parallel evaluator: `1` (the
    /// default) evaluates sequentially, `0` means "use available
    /// parallelism", and `N > 1` runs each non-greedy component's rounds
    /// across `N` workers. The computed model — tuples and costs — is
    /// identical at every worker count; see `docs/parallelism.md`.
    pub workers: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            strategy: Strategy::SemiNaive,
            max_rounds: 100_000,
            check_consistency: true,
            allow_unchecked: false,
            optimize: Optimize::default(),
            workers: 1,
        }
    }
}

/// Evaluation statistics.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Rounds used by each component, in evaluation order.
    pub rounds: Vec<usize>,
    /// Total number of head derivations (including re-derivations).
    pub derivations: u64,
    /// Total number of rule firings attempted.
    pub firings: u64,
    /// Optimizing-rewrite decisions taken this run (empty without
    /// [`EvalOptions::optimize`]), one human-readable line each.
    pub optimizations: Vec<String>,
    /// Derivations skipped by proven-sound filters (PreM dominance
    /// pruning, demand restriction) before they were buffered.
    pub pruned: u64,
}

/// The monotonic-aggregation engine.
pub struct MonotonicEngine<'p> {
    program: &'p Program,
    options: EvalOptions,
}

impl<'p> MonotonicEngine<'p> {
    pub fn new(program: &'p Program) -> Self {
        MonotonicEngine {
            program,
            options: EvalOptions::default(),
        }
    }

    pub fn with_options(program: &'p Program, options: EvalOptions) -> Self {
        MonotonicEngine { program, options }
    }

    /// Compute the iterated minimal model of the program over `edb`.
    pub fn evaluate(&self, edb: &Edb) -> Result<Model, EvalError> {
        self.evaluate_with_sink(edb, &mut NoopSink)
    }

    /// Like [`evaluate`](Self::evaluate), reporting instrumentation events
    /// into `sink` as the fixpoint runs. With [`NoopSink`] this
    /// monomorphizes to the uninstrumented evaluator.
    pub fn evaluate_with_sink<S: EventSink>(
        &self,
        edb: &Edb,
        sink: &mut S,
    ) -> Result<Model, EvalError> {
        self.evaluate_inner(edb, sink, &mut NoCapture, None)
    }

    /// Evaluate a ground point query. Without
    /// [`EvalOptions::optimize`]`.demand` this is a plain
    /// [`evaluate`](Self::evaluate) (the caller reads the answer out of
    /// the full model); with it, components disjoint from the goal's
    /// derivation cone are skipped outright and the goal's own component
    /// is restricted to tuples carrying the demanded constant whenever
    /// the demand analysis proves a uniform stable binding. The answer
    /// for the queried fact is identical either way.
    pub fn evaluate_goal(&self, edb: &Edb, goal: &Goal) -> Result<Model, EvalError> {
        self.evaluate_goal_with_sink(edb, goal, &mut NoopSink)
    }

    /// [`evaluate_goal`](Self::evaluate_goal) with instrumentation.
    pub fn evaluate_goal_with_sink<S: EventSink>(
        &self,
        edb: &Edb,
        goal: &Goal,
        sink: &mut S,
    ) -> Result<Model, EvalError> {
        self.evaluate_inner(edb, sink, &mut NoCapture, Some(goal))
    }

    /// Like [`evaluate`](Self::evaluate), additionally recording the
    /// derivation DAG of every accepted insert/improvement. The greedy
    /// strategy settles keys outside the `T_P` apply loop, so it is
    /// clamped to semi-naive here; the model is identical either way.
    pub fn evaluate_with_provenance(&self, edb: &Edb) -> Result<(Model, Provenance), EvalError> {
        let mut options = self.options.clone();
        if options.strategy == Strategy::Greedy {
            options.strategy = Strategy::SemiNaive;
        }
        // Provenance capture threads per-derivation trails through the
        // firing order; clamp to the sequential evaluator (the model is
        // identical either way, like the greedy clamp above).
        options.workers = 1;
        let engine = MonotonicEngine {
            program: self.program,
            options,
        };
        let mut cap = ProvenanceTracker::new(self.program);
        let model = engine.evaluate_inner(edb, &mut NoopSink, &mut cap, None)?;
        Ok((model, cap.finish()))
    }

    fn evaluate_inner<S: EventSink, C: Capture>(
        &self,
        edb: &Edb,
        sink: &mut S,
        cap: &mut C,
        query: Option<&Goal>,
    ) -> Result<Model, EvalError> {
        // The PreM rewrite needs the analysis report even when the
        // certification gate is bypassed: pruning is only sound on a
        // certified (statically conflict-free) program.
        let report = (!self.options.allow_unchecked || self.options.optimize.prem)
            .then(|| check_program(self.program));
        if !self.options.allow_unchecked {
            let report = report.as_ref().expect("gate computed the report");
            if !report.evaluable() {
                return Err(EvalError::NotCertified(report.summary(self.program)));
            }
        }
        let rewrites = match &report {
            Some(report) if self.options.optimize.prem => {
                prem_rewrites(self.program, report)
            }
            _ => Rewrites::default(),
        };

        let mut db = Interp::new();
        self.load_facts(&mut db, edb)?;

        let comps = components(self.program);
        let demand = match query {
            Some(goal) if self.options.optimize.demand => {
                Some(self.demand_plan(&comps, goal))
            }
            _ => None,
        };

        let mut stats = EvalStats::default();
        for line in rewrites.decisions.iter().flatten() {
            sink.optimization(line);
            stats.optimizations.push(line.clone());
        }
        if let Some(d) = &demand {
            sink.optimization(&d.decision);
            stats.optimizations.push(d.decision.clone());
        }

        let mut skipped = 0usize;
        for (ci, comp) in comps.iter().enumerate() {
            if let Some(d) = &demand {
                // A component disjoint from the derivation cone cannot
                // influence the query's answer: skip it wholesale. The
                // zero keeps `stats.rounds` index-aligned with components.
                if comp.preds.is_disjoint(&d.cone) {
                    stats.rounds.push(0);
                    skipped += 1;
                    continue;
                }
            }
            let prune = rewrites.prune.get(ci).copied().unwrap_or(false);
            let rounds = self
                .eval_component(
                    &mut db,
                    &comp.preds,
                    &comp.rule_indices,
                    ci,
                    prune,
                    demand.as_ref().map(|d| &d.filter),
                    &mut stats,
                    sink,
                    cap,
                )
                .map_err(|e| match e {
                    EvalError::NonTermination {
                        rounds,
                        preds,
                        last_delta,
                        ..
                    } => EvalError::NonTermination {
                        rounds,
                        component: ci,
                        preds,
                        last_delta,
                    },
                    other => other,
                })?;
            stats.rounds.push(rounds);
        }
        if skipped > 0 {
            let line = format!("demand: skipped {skipped} component(s) outside the cone");
            sink.optimization(&line);
            stats.optimizations.push(line);
        }
        for pred in db.preds().collect::<Vec<_>>() {
            if let Some(rel) = db.relation(pred) {
                sink.index_stats(pred, rel.index_sigs().len(), rel.index_stats());
                // The deep-size walk is O(db); only pay it for sinks that
                // report memory.
                if sink.wants_relation_memory() {
                    sink.relation_memory(pred, rel.heap_bytes());
                }
            }
        }
        Ok(Model::new(db, stats))
    }

    fn load_facts(&self, db: &mut Interp, edb: &Edb) -> Result<(), EvalError> {
        // Inline program facts.
        for atom in &self.program.facts {
            let spec = self.program.cost_spec(atom.pred);
            let has_cost = spec.is_some();
            let key: Vec<Value> = atom
                .key_args(has_cost)
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Value::from_const(*c),
                    Term::Var(_) => unreachable!("facts are ground"),
                })
                .collect();
            let cost = match (spec, atom.cost_arg(has_cost)) {
                (Some(spec), Some(Term::Const(c))) => {
                    let domain = RuntimeDomain::new(spec.domain);
                    Some(
                        domain
                            .coerce(Value::from_const(*c))
                            .map_err(EvalError::Domain)?,
                    )
                }
                _ => None,
            };
            self.store_fact(db, atom.pred, Tuple::new(key), cost)?;
        }
        // External EDB.
        for (pred, key, cost) in edb.coerced(self.program).map_err(EvalError::Domain)? {
            self.store_fact(db, pred, key, cost)?;
        }
        Ok(())
    }

    fn store_fact(
        &self,
        db: &mut Interp,
        pred: Pred,
        key: Tuple,
        cost: Option<Value>,
    ) -> Result<(), EvalError> {
        let rel = db.relation_mut(pred);
        match (rel.get(&key), &cost) {
            (Some(Some(old)), Some(new)) if old != new => {
                if self.options.check_consistency {
                    return Err(EvalError::CostConflict {
                        pred: self.program.pred_name(pred),
                        key: format!("{key:?}"),
                        value_a: old.to_string(),
                        value_b: new.to_string(),
                    });
                }
                let domain = RuntimeDomain::new(
                    self.program.cost_spec(pred).expect("cost value").domain,
                );
                let joined = domain.join(old, new);
                rel.insert(key, Some(joined));
            }
            _ => {
                rel.insert(key, cost);
            }
        }
        Ok(())
    }

    /// Build the runtime demand restriction for one point query: the
    /// goal's derivation cone, plus per-predicate constant filters on the
    /// goal's own component when [`uniform_binding`] proves one of the
    /// goal's key positions stable.
    fn demand_plan(&self, comps: &[Component], goal: &Goal) -> DemandPlan {
        let cone = derivation_cone(self.program, goal.pred);
        let gname = self.program.pred_name(goal.pred);
        let mut filter = HashMap::new();
        let mut restricted = None;
        if let Some(comp) = comps.iter().find(|c| c.preds.contains(&goal.pred)) {
            for pos in 0..key_arity(self.program, goal.pred) {
                let Some(want) = goal.key.0.get(pos) else { break };
                if let Some(assign) = uniform_binding(self.program, comp, goal.pred, pos) {
                    for (p, j) in assign {
                        filter.insert(p, (j, want.clone()));
                    }
                    restricted = Some((pos, want.clone()));
                    break;
                }
            }
        }
        let decision = match restricted {
            Some((pos, v)) => format!(
                "demand: restricted the component of {gname} to {gname}[{pos}] = {}",
                v.display(self.program)
            ),
            None => format!("demand: no stable binding for {gname}; cone restriction only"),
        };
        DemandPlan {
            cone,
            filter,
            decision,
        }
    }

    /// Evaluate one component to fixpoint. Returns the number of rounds.
    #[allow(clippy::too_many_arguments)]
    fn eval_component<S: EventSink, C: Capture>(
        &self,
        db: &mut Interp,
        cdb: &BTreeSet<Pred>,
        rule_indices: &[usize],
        ci: usize,
        prune: bool,
        demand: Option<&DemandFilter>,
        stats: &mut EvalStats,
        sink: &mut S,
        cap: &mut C,
    ) -> Result<usize, EvalError> {
        // Precompute plans.
        let mut execs: Vec<RuleExec> = Vec::new();
        for &ri in rule_indices {
            let rule = &self.program.rules[ri];
            let plan = plan_rule(self.program, rule, &BTreeSet::new(), None)
                .map_err(EvalError::Aggregate)?;
            let mut drivers = Vec::new();
            for (li, lit) in rule.body.iter().enumerate() {
                match lit {
                    Literal::Pos(a) if cdb.contains(&a.pred) => {
                        let seed_vars: BTreeSet<Var> = a.vars().collect();
                        let seeded = plan_rule(self.program, rule, &seed_vars, Some(li))
                            .map_err(EvalError::Aggregate)?;
                        drivers.push(Driver {
                            pred: a.pred,
                            lit: li,
                            conjunct: None,
                            plan: seeded,
                            relax: None,
                        });
                    }
                    Literal::Agg(agg) => {
                        // Join-fold relaxation eligibility (see Driver):
                        // single-conjunct `=r` fold whose result variable is
                        // exactly the head cost argument and occurs nowhere
                        // else in the rule.
                        let relax_plan = relaxation_plan(self.program, rule, li, agg);
                        for (ci, conj) in agg.conjuncts.iter().enumerate() {
                            if cdb.contains(&conj.pred) {
                                drivers.push(Driver {
                                    pred: conj.pred,
                                    lit: li,
                                    conjunct: Some(ci),
                                    // Aggregate drivers re-run the default
                                    // plan with grouping vars pre-bound.
                                    plan: plan.clone(),
                                    relax: relax_plan.clone(),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            execs.push(RuleExec { ri, rule, plan, drivers });
        }

        // Register every plan-selected probe signature on its relation so
        // the join indexes exist before the first probe (plan-time index
        // selection). Aggregate-driver reruns that bind extra grouping
        // positions fall back to lazily created indexes for their wider
        // signatures.
        for exec in &execs {
            let mut wanted: Vec<(Pred, Sig)> = exec.plan.probe_sigs(exec.rule);
            for driver in &exec.drivers {
                wanted.extend(driver.plan.probe_sigs(exec.rule));
                if let Some(relax) = &driver.relax {
                    wanted.extend(relax.probe_sigs(exec.rule));
                }
            }
            for (pred, sig) in wanted {
                db.relation_mut(pred).ensure_index(sig);
            }
        }

        let greedy = self.options.strategy == Strategy::Greedy
            && greedy_eligible(self.program, cdb, rule_indices);
        let used = if greedy {
            Strategy::Greedy
        } else if self.options.strategy == Strategy::Naive {
            Strategy::Naive
        } else {
            // A requested greedy strategy falls back to semi-naive on
            // ineligible components.
            Strategy::SemiNaive
        };
        let cdb_preds: Vec<Pred> = cdb.iter().copied().collect();
        sink.component_start(ci, used, &cdb_preds);

        // Per-exec-slot head-derivation counts, flushed as
        // `rule_derivations` events at component end.
        let mut rule_pushes = vec![0u64; execs.len()];
        // Aggregate-evaluation totals (interior mutability: `Ctx` is shared
        // immutably down the recursive step executor).
        let agg_counters = AggCounters::default();

        if greedy {
            // Dominance pruning is withheld under greedy settling: a
            // dominated derivation there is evidence of a frontier
            // violation (negative weights), which must surface as
            // `GreedyViolation`, not be silently discarded.
            return self.eval_component_greedy(
                db,
                cdb,
                &execs,
                ci,
                demand,
                &mut rule_pushes,
                &agg_counters,
                stats,
                sink,
                cap,
            );
        }

        // The sharded parallel evaluator covers the naive and semi-naive
        // strategies. Provenance capture threads derivation trails through
        // the firing order, so captured runs stay sequential (their entry
        // point also clamps `workers`); greedy components settled above.
        let workers = if C::ENABLED {
            1
        } else {
            par::resolve_workers(self.options.workers)
        };
        if workers > 1 {
            return self.eval_component_parallel(
                db,
                cdb,
                &execs,
                ci,
                prune,
                demand,
                &mut rule_pushes,
                &agg_counters,
                stats,
                sink,
                workers,
            );
        }

        let mut rounds = 0usize;
        let mut component_pruned = 0u64;
        // Per-round delta, batched per predicate: each driver iterates only
        // the changes of its own predicate instead of rescanning the whole
        // round delta per occurrence.
        let mut delta: HashMap<Pred, Vec<Arc<Tuple>>> = HashMap::new();
        loop {
            if rounds >= self.options.max_rounds {
                return Err(EvalError::NonTermination {
                    rounds,
                    component: 0,
                    preds: cdb.iter().map(|p| self.program.pred_name(*p)).collect(),
                    last_delta: delta.values().map(Vec::len).sum(),
                });
            }
            let full = rounds == 0 || self.options.strategy == Strategy::Naive;
            sink.round_start(rounds + 1, full);
            if C::ENABLED {
                cap.begin_round(ci, rounds + 1);
            }
            let mut derived =
                RoundBuffer::new(self.program, self.options.check_consistency, &mut rule_pushes);
            derived.prune = prune;
            derived.demand = demand;
            {
                let ctx = Ctx {
                    program: self.program,
                    db,
                    agg: &agg_counters,
                };
                if full {
                    for (slot, exec) in execs.iter().enumerate() {
                        stats.firings += 1;
                        sink.rule_fire_start(exec.ri);
                        if C::ENABLED {
                            cap.begin_rule(exec.ri);
                        }
                        derived.current = slot;
                        let mut binding = Binding::new();
                        exec_steps(
                            &ctx,
                            exec.rule,
                            &exec.plan.steps,
                            &mut binding,
                            &mut derived,
                            cap,
                        )?;
                        sink.rule_fire_end(exec.ri);
                    }
                } else {
                    let mut seen_seeds = SeenSeeds::new();
                    for (ei, exec) in execs.iter().enumerate() {
                        for driver in &exec.drivers {
                            let Some(changed) = delta.get(&driver.pred) else {
                                continue;
                            };
                            for dkey in changed {
                                self.fire_driver(
                                    &ctx,
                                    ei,
                                    exec,
                                    driver,
                                    dkey,
                                    &mut seen_seeds,
                                    &mut derived,
                                    stats,
                                    sink,
                                    cap,
                                    None,
                                )?;
                            }
                        }
                    }
                }
            }
            let derived_count = derived.map.len();
            stats.derivations += derived_count as u64;
            stats.pruned += derived.pruned;
            component_pruned += derived.pruned;

            // Apply derivations: join into db, recording changed keys.
            let new_delta = self.apply_round(db, derived.map, &execs, sink, cap);
            if C::ENABLED {
                cap.end_round();
            }

            rounds += 1;
            let changed: usize = new_delta.values().map(Vec::len).sum();
            for (pred, keys) in &new_delta {
                sink.delta(*pred, keys.len());
            }
            sink.round_end(rounds, derived_count, changed);
            if new_delta.is_empty() {
                // A semi-naive pass that saw no changes is a genuine
                // fixpoint: every rule was either re-fired through a driver
                // or has no dependency on the component.
                for (slot, exec) in execs.iter().enumerate() {
                    sink.rule_derivations(exec.ri, rule_pushes[slot]);
                }
                sink.aggregate_totals(
                    agg_counters.groups.get(),
                    agg_counters.elements.get(),
                    agg_counters.peak_bytes.get(),
                );
                if component_pruned > 0 {
                    sink.pruned(ci, component_pruned);
                }
                sink.component_end(ci, rounds);
                return Ok(rounds);
            }
            delta = new_delta;
        }
    }

    /// Join one round's buffered derivations into the database, emitting
    /// per-derivation insert outcomes and returning the next round's
    /// delta. The buffered `Arc` keys flow straight into the relation and
    /// the delta — no re-cloning of tuple storage. Shared by the
    /// sequential round loop and the parallel barrier (which applies the
    /// merged shard buffers under the database write lock).
    fn apply_round<S: EventSink, C: Capture>(
        &self,
        db: &mut Interp,
        derived: HashMap<(Pred, Arc<Tuple>), DerivedEntry>,
        execs: &[RuleExec<'_>],
        sink: &mut S,
        cap: &mut C,
    ) -> HashMap<Pred, Vec<Arc<Tuple>>> {
        let mut new_delta: HashMap<Pred, Vec<Arc<Tuple>>> = HashMap::new();
        for ((pred, key), entry) in derived {
            let DerivedEntry { cost, slot, .. } = entry;
            let domain = self
                .program
                .cost_spec(pred)
                .map(|c| RuntimeDomain::new(c.domain));
            let rel = db.relation_mut(pred);
            let outcome = match rel.get(&key) {
                None => {
                    // For default-value predicates, an explicit entry at
                    // the default value is not a change.
                    let is_default_entry = self.program.has_default(pred)
                        && domain
                            .as_ref()
                            .is_some_and(|d| cost.as_ref() == Some(&d.bottom()));
                    if C::ENABLED && !is_default_entry {
                        cap.commit(pred, &key, &cost, false);
                    }
                    rel.insert_arc(key.clone(), cost);
                    if !is_default_entry {
                        new_delta.entry(pred).or_default().push(key);
                        InsertOutcome::New
                    } else {
                        InsertOutcome::Noop
                    }
                }
                Some(existing) => {
                    let mut outcome = InsertOutcome::Noop;
                    if let (Some(old), Some(new), Some(d)) =
                        (existing.clone(), &cost, &domain)
                    {
                        let joined = d.join(&old, new);
                        if joined != old {
                            let joined = Some(joined);
                            if C::ENABLED {
                                cap.commit(pred, &key, &joined, true);
                            }
                            rel.insert_arc(key.clone(), joined);
                            new_delta.entry(pred).or_default().push(key);
                            outcome = InsertOutcome::Improved;
                        }
                    }
                    outcome
                }
            };
            sink.insert_outcome(execs[slot].ri, pred, outcome);
        }
        new_delta
    }

    /// Evaluate one component's rounds across a pool of worker threads
    /// (`--parallel[=N]`), reaching the same fixpoint as the sequential
    /// round loop.
    ///
    /// The database moves into an `RwLock` for the component: workers
    /// take read locks while firing (the firing phase never writes), the
    /// orchestrator takes the write lock for the apply phase, and the
    /// round barrier separates the two, so the lock is never contended.
    /// Every round, each worker walks the full delta but fires only the
    /// seeds its shard owns ([`par::shard_of`]; full rounds round-robin
    /// exec slots instead), so the union of worker firings is exactly the
    /// sequential firing set and worker-local seed dedup is global dedup.
    /// At the barrier the per-worker round buffers merge in worker order
    /// ([`merge_worker_entry`]), rule-fire events replay into the real
    /// sink in exec order, and the merged buffer is applied exactly as a
    /// sequential round's would be.
    #[allow(clippy::too_many_arguments)]
    fn eval_component_parallel<S: EventSink>(
        &self,
        db: &mut Interp,
        cdb: &BTreeSet<Pred>,
        execs: &[RuleExec<'_>],
        ci: usize,
        prune: bool,
        demand: Option<&DemandFilter>,
        rule_pushes: &mut [u64],
        agg_counters: &AggCounters,
        stats: &mut EvalStats,
        sink: &mut S,
        workers: usize,
    ) -> Result<usize, EvalError> {
        let db_lock = RwLock::new(std::mem::take(db));
        // Span recording is opt-in per sink; `None` (the default) keeps
        // every clock read out of the worker loop and the barrier.
        let tracer = sink.worker_tracer();
        // Likewise latency recording: a meter means workers time their
        // firings into local histograms, merged here at the barrier.
        let meter = sink.worker_meter();
        let result = std::thread::scope(|s| {
            let (res_tx, res_rx) = mpsc::channel::<WorkerRound>();
            let mut job_txs = Vec::with_capacity(workers);
            for w in 0..workers {
                let (tx, rx) = mpsc::channel::<ParJob>();
                job_txs.push(tx);
                let res_tx = res_tx.clone();
                let db_ref = &db_lock;
                let wt = tracer.clone();
                let wm = meter.clone();
                s.spawn(move || {
                    self.parallel_worker(
                        db_ref, execs, w, workers, prune, demand, wt, wm, rx, res_tx,
                    )
                });
            }
            drop(res_tx);

            let mut rounds = 0usize;
            let mut component_pruned = 0u64;
            let mut delta: Arc<HashMap<Pred, Vec<Arc<Tuple>>>> = Arc::new(HashMap::new());
            loop {
                if rounds >= self.options.max_rounds {
                    return Err(EvalError::NonTermination {
                        rounds,
                        component: 0,
                        preds: cdb.iter().map(|p| self.program.pred_name(*p)).collect(),
                        last_delta: delta.values().map(Vec::len).sum(),
                    });
                }
                let full = rounds == 0 || self.options.strategy == Strategy::Naive;
                sink.round_start(rounds + 1, full);
                for tx in &job_txs {
                    tx.send(ParJob {
                        round: rounds,
                        full,
                        delta: Arc::clone(&delta),
                    })
                    .expect("worker exited mid-component");
                }

                // Round barrier: one result per worker. The wait is
                // measured from the first arrival — time the orchestrator
                // spends blocked on stragglers, i.e. shard imbalance.
                let mut results: Vec<WorkerRound> = Vec::with_capacity(workers);
                let mut first_arrival: Option<Instant> = None;
                while results.len() < workers {
                    let r = res_rx.recv().expect("worker pool hung up mid-round");
                    debug_assert_eq!(r.round, rounds, "barrier received a stale round");
                    first_arrival.get_or_insert_with(Instant::now);
                    results.push(r);
                }
                let barrier_wait_nanos = first_arrival
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                let barrier_done = tracer.as_ref().map(|t| t.now());
                let meter_done = meter.as_ref().map(|m| m.now_nanos());
                results.sort_by_key(|r| r.worker);
                // The lowest-indexed worker's error wins: deterministic
                // for a fixed pool size.
                if let Some(e) = results.iter_mut().find_map(|r| r.error.take()) {
                    return Err(e);
                }
                // Worker lanes: each shard's fire span plus the wait from
                // its last firing to barrier collection, pushed in worker
                // order so parallel traces are push-order deterministic.
                if let (Some(t), Some(done)) = (&tracer, barrier_done) {
                    for r in &results {
                        if let Some(span) = r.fire_span {
                            t.worker_round_spans(r.worker, span, done);
                        }
                    }
                }
                // Worker latency samples: fill in the barrier wait (time
                // from each shard's last firing to barrier collection)
                // and merge each worker's local histograms into the sink,
                // in worker order so delivery is deterministic.
                if let Some(done) = meter_done {
                    for r in &mut results {
                        if let Some(mut sample) = r.metrics.take() {
                            sample.wait_nanos = done.saturating_sub(sample.fire_end_nanos);
                            sink.worker_sample(&sample);
                        }
                    }
                }

                let shard_sizes: Vec<usize> =
                    results.iter().map(|r| r.firings as usize).collect();
                for r in &results {
                    stats.firings += r.firings;
                    stats.pruned += r.pruned;
                    component_pruned += r.pruned;
                    for (slot, n) in r.pushes.iter().enumerate() {
                        rule_pushes[slot] += n;
                    }
                    agg_counters.groups.set(agg_counters.groups.get() + r.groups);
                    agg_counters
                        .elements
                        .set(agg_counters.elements.get() + r.elements);
                    agg_counters
                        .peak_bytes
                        .set(agg_counters.peak_bytes.get().max(r.peak_bytes));
                }
                // Replay rule-fire events in exec order so metrics sinks
                // count firings exactly as sequentially (per-firing wall
                // time is not meaningful under interleaving; span sinks
                // already hold the real timings on the worker lanes).
                for exec in execs {
                    let fired: u64 = results
                        .iter()
                        .map(|r| r.fired.get(&exec.ri).copied().unwrap_or(0))
                        .sum();
                    if fired > 0 {
                        sink.rule_firings(exec.ri, fired);
                    }
                }

                // Merge the shard buffers in worker order.
                let merge_start = tracer.as_ref().map(|t| t.now());
                use std::collections::hash_map::Entry;
                let mut merged: HashMap<(Pred, Arc<Tuple>), DerivedEntry> = HashMap::new();
                let mut merges = 0u64;
                for r in results {
                    for (k, entry) in r.entries {
                        match merged.entry(k) {
                            Entry::Vacant(v) => {
                                v.insert(entry);
                            }
                            Entry::Occupied(mut o) => {
                                merges += 1;
                                let (pred, key) = (o.key().0, Arc::clone(&o.key().1));
                                merge_worker_entry(
                                    self.program,
                                    self.options.check_consistency,
                                    pred,
                                    &key,
                                    o.get_mut(),
                                    entry,
                                )?;
                            }
                        }
                    }
                }
                if let (Some(t), Some(start)) = (&tracer, merge_start) {
                    let end = t.now();
                    t.push_at(start, MAIN_LANE, Ph::Begin, "worker", NameRef::Static("merge"), Vec::new());
                    t.push_at(end, MAIN_LANE, Ph::End, "worker", NameRef::Static("merge"), Vec::new());
                }
                sink.parallel_round(rounds + 1, workers, &shard_sizes, merges, barrier_wait_nanos);

                let derived_count = merged.len();
                stats.derivations += derived_count as u64;
                let new_delta = {
                    let mut guard = db_lock.write().unwrap();
                    self.apply_round(&mut guard, merged, execs, sink, &mut NoCapture)
                };

                rounds += 1;
                let changed: usize = new_delta.values().map(Vec::len).sum();
                for (pred, keys) in &new_delta {
                    sink.delta(*pred, keys.len());
                }
                sink.round_end(rounds, derived_count, changed);
                if new_delta.is_empty() {
                    for (slot, exec) in execs.iter().enumerate() {
                        sink.rule_derivations(exec.ri, rule_pushes[slot]);
                    }
                    sink.aggregate_totals(
                        agg_counters.groups.get(),
                        agg_counters.elements.get(),
                        agg_counters.peak_bytes.get(),
                    );
                    if component_pruned > 0 {
                        sink.pruned(ci, component_pruned);
                    }
                    sink.component_end(ci, rounds);
                    return Ok(rounds);
                }
                delta = Arc::new(new_delta);
            }
        });
        *db = db_lock
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        result
    }

    /// One worker thread's loop: for each round job, fire the shard's
    /// slice of the work against a read-locked database view into a
    /// worker-local round buffer, and send the buffer plus telemetry to
    /// the barrier. Exits when the job channel closes (fixpoint or
    /// error).
    #[allow(clippy::too_many_arguments)]
    fn parallel_worker(
        &self,
        db_lock: &RwLock<Interp>,
        execs: &[RuleExec<'_>],
        me: usize,
        workers: usize,
        prune: bool,
        demand: Option<&DemandFilter>,
        tracer: Option<Tracer>,
        meter: Option<crate::metrics::Meter>,
        jobs: mpsc::Receiver<ParJob>,
        results: mpsc::Sender<WorkerRound>,
    ) {
        while let Ok(job) = jobs.recv() {
            let fire_start = tracer.as_ref().map(|t| t.now());
            let meter_start = meter.as_ref().map(|m| m.now_nanos());
            let mut pushes = vec![0u64; execs.len()];
            let mut tally = FireTally::with_meter(meter.clone());
            let mut wstats = EvalStats::default();
            let agg = AggCounters::default();
            let mut error = None;
            let pruned;
            let entries;
            {
                let db = db_lock.read().unwrap();
                let ctx = Ctx {
                    program: self.program,
                    db: &db,
                    agg: &agg,
                };
                let mut derived = RoundBuffer::new(
                    self.program,
                    self.options.check_consistency,
                    &mut pushes,
                );
                derived.prune = prune;
                derived.demand = demand;
                let fired: Result<(), EvalError> = if job.full {
                    // Full rounds have no seeds to shard: round-robin the
                    // exec slots instead.
                    execs
                        .iter()
                        .enumerate()
                        .filter(|(slot, _)| slot % workers == me)
                        .try_for_each(|(slot, exec)| {
                            wstats.firings += 1;
                            tally.rule_fire_start(exec.ri);
                            derived.current = slot;
                            let mut binding = Binding::new();
                            let fired = exec_steps(
                                &ctx,
                                exec.rule,
                                &exec.plan.steps,
                                &mut binding,
                                &mut derived,
                                &mut NoCapture,
                            );
                            tally.rule_fire_end(exec.ri);
                            fired
                        })
                } else {
                    let mut seen_seeds = SeenSeeds::new();
                    let mut walk = || -> Result<(), EvalError> {
                        for (ei, exec) in execs.iter().enumerate() {
                            for driver in &exec.drivers {
                                let Some(changed) = job.delta.get(&driver.pred) else {
                                    continue;
                                };
                                for dkey in changed {
                                    self.fire_driver(
                                        &ctx,
                                        ei,
                                        exec,
                                        driver,
                                        dkey,
                                        &mut seen_seeds,
                                        &mut derived,
                                        &mut wstats,
                                        &mut tally,
                                        &mut NoCapture,
                                        Some((me, workers)),
                                    )?;
                                }
                            }
                        }
                        Ok(())
                    };
                    walk()
                };
                if let Err(e) = fired {
                    error = Some(e);
                }
                pruned = derived.pruned;
                entries = std::mem::take(&mut derived.map);
            }
            // Measured before the send so the span can't include the
            // orchestrator's receive; the barrier clamps wait spans to
            // start no earlier than this end.
            let fire_span =
                fire_start.map(|s| (s, tracer.as_ref().map(|t| t.now()).unwrap_or(s)));
            // Same clamp for the metrics sample: the firing phase ends
            // here; the orchestrator derives the barrier wait from this
            // reading and its own collection time.
            let metrics = meter.as_ref().map(|m| {
                let end = m.now_nanos();
                crate::metrics::WorkerSample {
                    worker: me,
                    fire_nanos: end.saturating_sub(meter_start.unwrap_or(end)),
                    fire_end_nanos: end,
                    wait_nanos: 0,
                    rule_nanos: tally.take_rule_nanos(),
                }
            });
            let sent = results.send(WorkerRound {
                worker: me,
                round: job.round,
                fire_span,
                entries,
                pushes,
                fired: tally.counts,
                metrics,
                firings: wstats.firings,
                pruned,
                groups: agg.groups.get(),
                elements: agg.elements.get(),
                peak_bytes: agg.peak_bytes.get(),
                error,
            });
            if sent.is_err() {
                return;
            }
        }
    }

    /// Best-first evaluation of an eligible `min_real` component.
    ///
    /// Settled keys bypass the `T_P` apply loop, so provenance capture
    /// does not commit nodes here — [`Self::evaluate_with_provenance`]
    /// clamps greedy to semi-naive instead.
    #[allow(clippy::too_many_arguments)]
    fn eval_component_greedy<S: EventSink, C: Capture>(
        &self,
        db: &mut Interp,
        cdb: &BTreeSet<Pred>,
        execs: &[RuleExec],
        ci: usize,
        demand: Option<&DemandFilter>,
        rule_pushes: &mut [u64],
        agg_counters: &AggCounters,
        stats: &mut EvalStats,
        sink: &mut S,
        cap: &mut C,
    ) -> Result<usize, EvalError> {
        use maglog_lattice::Real;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Move any pre-loaded CDB facts into the candidate queue so that
        // rule-derived cheaper values can still win. Keys stay shared
        // `Arc`s throughout the heap, the cost table, and the relation.
        let mut candidates: BinaryHeap<Reverse<(Real, Pred, Arc<Tuple>)>> = BinaryHeap::new();
        let mut costs: HashMap<(Pred, Arc<Tuple>), Real> = HashMap::new();
        let mut component_pruned = 0u64;
        for &pred in cdb {
            let rel = std::mem::take(db.relation_mut(pred));
            for (key, cost) in rel.iter_arcs() {
                if let Some(Value::Num(r)) = cost {
                    candidates.push(Reverse((*r, pred, key.clone())));
                    costs.insert((pred, key.clone()), *r);
                }
            }
        }

        // Initial full pass over the (LDB-only) database.
        {
            let ctx = Ctx {
                program: self.program,
                db,
                agg: agg_counters,
            };
            let mut derived = RoundBuffer::new(self.program, false, rule_pushes);
            derived.demand = demand;
            for (slot, exec) in execs.iter().enumerate() {
                stats.firings += 1;
                sink.rule_fire_start(exec.ri);
                derived.current = slot;
                let mut binding = Binding::new();
                exec_steps(&ctx, exec.rule, &exec.plan.steps, &mut binding, &mut derived, cap)?;
                sink.rule_fire_end(exec.ri);
            }
            stats.derivations += derived.map.len() as u64;
            stats.pruned += derived.pruned;
            component_pruned += derived.pruned;
            for ((pred, key), entry) in derived.map {
                if let Some(Value::Num(r)) = entry.cost {
                    let best = costs.entry((pred, key.clone())).or_insert(r);
                    if r <= *best {
                        *best = r;
                        candidates.push(Reverse((r, pred, key)));
                    }
                }
            }
        }

        let mut pops = 0usize;
        let pop_budget = self.options.max_rounds.saturating_mul(64);
        #[allow(unused_assignments)] // set before first read, on first pop
        let mut frontier = Real::NEG_INFINITY;
        while let Some(Reverse((cost, pred, key))) = candidates.pop() {
            // Already settled with an equal-or-better value?
            if db
                .relation(pred)
                .is_some_and(|rel| rel.contains(&key))
            {
                continue;
            }
            pops += 1;
            if pops > pop_budget {
                return Err(EvalError::NonTermination {
                    rounds: pops,
                    component: 0,
                    preds: cdb.iter().map(|p| self.program.pred_name(*p)).collect(),
                    last_delta: candidates.len(),
                });
            }
            sink.round_start(pops, false);
            sink.greedy_settle(pred, &key, cost.get());
            frontier = cost;
            db.relation_mut(pred)
                .insert_arc(key.clone(), Some(Value::Num(cost)));

            // Fire the semi-naive drivers for this single settled atom.
            let mut derived = RoundBuffer::new(self.program, false, rule_pushes);
            derived.demand = demand;
            {
                let ctx = Ctx {
                    program: self.program,
                    db,
                    agg: agg_counters,
                };
                let mut seen_seeds = SeenSeeds::new();
                for (ei, exec) in execs.iter().enumerate() {
                    for driver in &exec.drivers {
                        if driver.pred != pred {
                            continue;
                        }
                        self.fire_driver(
                            &ctx,
                            ei,
                            exec,
                            driver,
                            &key,
                            &mut seen_seeds,
                            &mut derived,
                            stats,
                            sink,
                            cap,
                            None,
                        )?;
                    }
                }
            }
            let derived_count = derived.map.len();
            stats.derivations += derived_count as u64;
            stats.pruned += derived.pruned;
            component_pruned += derived.pruned;
            let mut pushed = 0usize;
            for ((dpred, dkey), dentry) in derived.map {
                let Some(Value::Num(r)) = dentry.cost else { continue };
                // Re-derivations of settled atoms are fine as long as they
                // do not *improve* them (alternative equal-cost paths, or
                // dominated ones re-found through a new route).
                if let Some(Some(Value::Num(old))) = db
                    .relation(dpred)
                    .and_then(|rel| rel.get(&dkey))
                    .cloned()
                {
                    if r >= old {
                        continue;
                    }
                    return Err(EvalError::GreedyViolation {
                        detail: format!(
                            "settled atom of {} at {} improved to {} \
                             (negative weights? use the semi-naive strategy)",
                            self.program.pred_name(dpred),
                            old,
                            r
                        ),
                    });
                }
                if r < frontier {
                    return Err(EvalError::GreedyViolation {
                        detail: format!(
                            "derivation for {} at cost {} undercuts the settled frontier {} \
                             (negative weights? use the semi-naive strategy)",
                            self.program.pred_name(dpred),
                            r,
                            frontier
                        ),
                    });
                }
                let slot = costs.entry((dpred, dkey.clone())).or_insert(r);
                if r <= *slot {
                    *slot = r;
                    candidates.push(Reverse((r, dpred, dkey)));
                    pushed += 1;
                }
            }
            // Each pop is a (single-tuple) round: the settled atom is the
            // round's delta, `pushed` counts new frontier candidates.
            sink.delta(pred, 1);
            sink.round_end(pops, derived_count, pushed);
        }
        for (slot, exec) in execs.iter().enumerate() {
            sink.rule_derivations(exec.ri, rule_pushes[slot]);
        }
        sink.aggregate_totals(
            agg_counters.groups.get(),
            agg_counters.elements.get(),
            agg_counters.peak_bytes.get(),
        );
        if component_pruned > 0 {
            sink.pruned(ci, component_pruned);
        }
        sink.component_end(ci, pops);
        Ok(pops)
    }

    /// Fire one semi-naive driver for one delta tuple. `shard` is the
    /// parallel evaluator's `(worker, workers)` filter: seeds hashing
    /// outside the worker's shard are skipped *before* dedup, so each
    /// seed fires on exactly one worker and worker-local dedup is global.
    #[allow(clippy::too_many_arguments)]
    fn fire_driver<S: EventSink, C: Capture>(
        &self,
        ctx: &Ctx<'_>,
        exec_index: usize,
        exec: &RuleExec<'_>,
        driver: &Driver,
        delta_key: &Tuple,
        seen_seeds: &mut SeenSeeds,
        derived: &mut RoundBuffer<'_>,
        stats: &mut EvalStats,
        sink: &mut S,
        cap: &mut C,
        shard: Option<(usize, usize)>,
    ) -> Result<(), EvalError> {
        let rule = exec.rule;
        // Match the driver atom against the delta tuple to get a seed.
        let atom = match (&rule.body[driver.lit], driver.conjunct) {
            (Literal::Pos(a), None) => a,
            (Literal::Agg(agg), Some(ci)) => &agg.conjuncts[ci],
            _ => return Ok(()),
        };
        let cost = ctx
            .db
            .cost(ctx.program, driver.pred, delta_key)
            .unwrap_or(None);
        let mut binding = Binding::new();
        if !match_atom_against(ctx.program, atom, delta_key, &cost, &mut binding) {
            return Ok(());
        }
        // Join-fold relaxation: bind the result variable to the delta
        // element and skip the aggregate entirely.
        if let (Some(relax), Some(_)) = (&driver.relax, driver.conjunct) {
            let rule_agg = match &rule.body[driver.lit] {
                Literal::Agg(a) => a,
                _ => unreachable!("relax driver on non-aggregate"),
            };
            let Term::Var(result) = rule_agg.result else {
                unreachable!("relaxation requires a variable result")
            };
            let Some(element) = cost.clone() else {
                return Ok(());
            };
            let groupings: BTreeSet<Var> = rule
                .aggregate_grouping_vars(driver.lit)
                .into_iter()
                .collect();
            let mut seed: HashMap<Var, Value> = binding
                .map
                .iter()
                .filter(|(v, _)| groupings.contains(v))
                .map(|(v, val)| (*v, val.clone()))
                .collect();
            seed.insert(result, element);
            let mut seed_vec: Vec<(Var, Value)> =
                seed.iter().map(|(v, val)| (*v, val.clone())).collect();
            seed_vec.sort_by_key(|(v, _)| *v);
            let disc = driver.lit as u64 * 1024 + 1022;
            if let Some((me, workers)) = shard {
                if par::shard_of(exec_index, disc, &seed_vec, workers) != me {
                    return Ok(());
                }
            }
            if !seen_seeds.insert((exec_index, disc, seed_vec)) {
                return Ok(());
            }
            stats.firings += 1;
            sink.rule_fire_start(exec.ri);
            if C::ENABLED {
                cap.begin_rule(exec.ri);
                // The relaxed derivation's aggregate witness is the delta
                // element itself: the group was not rescanned, the lattice
                // join resolves the rest (marked `partial`).
                let elem = cost.clone().expect("relax driver has an element");
                cap.push_agg(AggWitness {
                    lit: driver.lit,
                    func: rule_agg.func,
                    result: elem.clone(),
                    elements: 1,
                    witnesses: vec![(
                        elem,
                        vec![BodyAtom {
                            pred: driver.pred,
                            key: Arc::new(delta_key.clone()),
                            cost: cost.clone(),
                        }],
                    )],
                    witnesses_total: 1,
                    partial: true,
                });
            }
            derived.current = exec_index;
            let mut b: Binding = seed.into();
            derived.joining = true;
            let r = exec_steps(ctx, rule, &relax.steps, &mut b, derived, cap);
            derived.joining = false;
            if C::ENABLED {
                cap.pop_agg();
            }
            sink.rule_fire_end(exec.ri);
            return r;
        }

        // For aggregate drivers, keep only the grouping variables: the
        // aggregate recomputes its group in full.
        let seed: Binding = if driver.conjunct.is_some() {
            let groupings: BTreeSet<Var> =
                rule.aggregate_grouping_vars(driver.lit).into_iter().collect();
            binding
                .map
                .iter()
                .filter(|(v, _)| groupings.contains(v))
                .map(|(v, val)| (*v, val.clone()))
                .collect::<HashMap<_, _>>()
                .into()
        } else {
            binding
        };
        let mut seed_vec: Vec<(Var, Value)> = seed
            .map
            .iter()
            .map(|(v, val)| (*v, val.clone()))
            .collect();
        seed_vec.sort_by_key(|(v, _)| *v);
        let disc = driver.lit as u64 * 1024 + driver.conjunct.unwrap_or(1023) as u64;
        if let Some((me, workers)) = shard {
            if par::shard_of(exec_index, disc, &seed_vec, workers) != me {
                return Ok(());
            }
        }
        if !seen_seeds.insert((exec_index, disc, seed_vec)) {
            return Ok(());
        }
        stats.firings += 1;
        sink.rule_fire_start(exec.ri);
        if C::ENABLED {
            cap.begin_rule(exec.ri);
            // A positive-atom driver's seeded plan skips re-matching the
            // delta atom, so put it on the trail by hand. (Aggregate
            // drivers re-run the full plan: their trail is complete.)
            if driver.conjunct.is_none() {
                cap.push_atom(driver.pred, delta_key, &cost);
            }
        }
        derived.current = exec_index;
        let mut b = seed;
        let r = exec_steps(ctx, rule, &driver.plan.steps, &mut b, derived, cap);
        if C::ENABLED && driver.conjunct.is_none() {
            cap.pop_atom();
        }
        sink.rule_fire_end(exec.ri);
        r
    }
}

/// One round's work order for a parallel worker. The delta is shared
/// read-only: every worker walks all of it and fires only its shard.
struct ParJob {
    round: usize,
    full: bool,
    delta: Arc<HashMap<Pred, Vec<Arc<Tuple>>>>,
}

/// One worker's contribution to a round barrier: its shard's round
/// buffer plus the telemetry the orchestrator folds into the component
/// totals and replays into the caller's sink.
struct WorkerRound {
    worker: usize,
    round: usize,
    /// `(start, end)` clock readings around the firing phase, present
    /// only when the sink opted into span tracing.
    fire_span: Option<(u64, u64)>,
    entries: HashMap<(Pred, Arc<Tuple>), DerivedEntry>,
    /// Per-exec-slot head derivations this round.
    pushes: Vec<u64>,
    /// Firings per program rule index (event replay).
    fired: HashMap<usize, u64>,
    /// Worker-local latency measurements, present only when the sink
    /// opted into metering ([`EventSink::worker_meter`]).
    metrics: Option<crate::metrics::WorkerSample>,
    firings: u64,
    pruned: u64,
    groups: u64,
    elements: u64,
    peak_bytes: u64,
    error: Option<EvalError>,
}

/// Combine two workers' buffered derivations of the same `(pred, key)` at
/// the round barrier (applied in worker-index order). Equal costs keep
/// the smallest exec-slot attribution — execs fire in ascending slot
/// order sequentially, so the minimum over shards is exactly the
/// sequential first deriver. Join-fold relaxation entries combine through
/// the mergeable accumulators ([`par::merge_costs`]), which is the domain
/// join the sequential buffer would have applied to the same pushes.
/// Divergent strict costs on a checked run are a Definition 2.6 conflict,
/// exactly as within one sequential buffer.
fn merge_worker_entry(
    program: &Program,
    check: bool,
    pred: Pred,
    key: &Tuple,
    into: &mut DerivedEntry,
    from: DerivedEntry,
) -> Result<(), EvalError> {
    into.slot = into.slot.min(from.slot);
    if into.cost == from.cost {
        into.joined |= from.joined;
        return Ok(());
    }
    if check && !into.joined && !from.joined {
        return Err(EvalError::CostConflict {
            pred: program.pred_name(pred),
            key: render_key(program, key),
            value_a: into
                .cost
                .as_ref()
                .map(|v| v.display(program))
                .unwrap_or_default(),
            value_b: from
                .cost
                .as_ref()
                .map(|v| v.display(program))
                .unwrap_or_default(),
        });
    }
    let domain = program.cost_spec(pred).map(|c| c.domain);
    if let (Some(old), Some(new), Some(d)) = (into.cost.clone(), from.cost, domain) {
        into.cost = Some(par::merge_costs(d, old, new));
    }
    into.joined |= from.joined;
    Ok(())
}

/// Build the relaxation plan for an aggregate at body index `li` if the
/// join-fold conditions hold (see [`Driver::relax`]).
fn relaxation_plan(
    program: &Program,
    rule: &Rule,
    li: usize,
    agg: &maglog_datalog::Aggregate,
) -> Option<Plan> {
    if agg.eq != AggEq::Restricted || agg.conjuncts.len() != 1 {
        return None;
    }
    let Term::Var(result) = agg.result else {
        return None;
    };
    // The head cost argument must be exactly the result variable.
    let spec = program.cost_spec(rule.head.pred)?;
    if rule.head.cost_arg(true) != Some(&Term::Var(result)) {
        return None;
    }
    if !is_join_fold(agg.func, spec.domain) {
        return None;
    }
    // The conjunct's cost domain must match the head domain.
    let conj = &agg.conjuncts[0];
    let conj_spec = program.cost_spec(conj.pred)?;
    if conj_spec.domain != spec.domain {
        return None;
    }
    // The result variable must not occur anywhere else in the body.
    for (i, lit) in rule.body.iter().enumerate() {
        let used = match lit {
            Literal::Pos(a) | Literal::Neg(a) => a.vars().any(|v| v == result),
            Literal::Builtin(b) => b.vars().contains(&result),
            Literal::Agg(a2) => {
                (i != li && a2.result == Term::Var(result))
                    || a2.inner_vars().contains(&result)
            }
        };
        if used {
            return None;
        }
    }
    // Seed: grouping vars plus the result var (bound to the delta element).
    let mut seed: BTreeSet<Var> = rule.aggregate_grouping_vars(li).into_iter().collect();
    seed.insert(result);
    plan_rule(program, rule, &seed, Some(li)).ok()
}

/// Is a component eligible for the greedy strategy? All CDB predicates
/// must be `min_real` cost predicates and every recursive aggregate must
/// be `min`.
fn greedy_eligible(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule_indices: &[usize],
) -> bool {
    let all_min = cdb.iter().all(|p| {
        program
            .cost_spec(*p)
            .is_some_and(|c| c.domain == maglog_datalog::DomainSpec::MinReal)
    });
    if !all_min {
        return false;
    }
    rule_indices.iter().all(|&ri| {
        program.rules[ri].body.iter().all(|lit| match lit {
            Literal::Agg(agg) => {
                let recursive = agg.conjuncts.iter().any(|a| cdb.contains(&a.pred));
                !recursive || agg.func == AggFunc::Min
            }
            Literal::Neg(a) => !cdb.contains(&a.pred),
            _ => true,
        })
    })
}

struct RuleExec<'p> {
    /// Index of the rule in `program.rules` (event attribution).
    ri: usize,
    rule: &'p Rule,
    plan: Plan,
    drivers: Vec<Driver>,
}

struct Driver {
    pred: Pred,
    lit: usize,
    conjunct: Option<usize>,
    plan: Plan,
    /// Join-fold relaxation: when the aggregate is a pure lattice fold
    /// (`=r min/max/or/and/union/intersect` matching the domain) whose
    /// result variable flows straight into the head cost argument, a
    /// changed element can be *relaxed* into the head directly — the
    /// accumulated lattice join over all relaxations equals the aggregate
    /// of the full group, at O(1) per delta instead of a group rescan.
    relax: Option<Plan>,
}

/// Is `func` the lattice join-fold of `domain` (so that
/// `F(S ∪ {d}) = F(S) ⊔ d`)?
pub(crate) fn is_join_fold(func: AggFunc, domain: maglog_datalog::DomainSpec) -> bool {
    use maglog_datalog::DomainSpec::*;
    matches!(
        (func, domain),
        (AggFunc::Min, MinReal)
            | (AggFunc::Max, MaxReal)
            | (AggFunc::Max, NonNegReal)
            | (AggFunc::Max, Nat)
            | (AggFunc::Or, BoolOr)
            | (AggFunc::And, BoolAnd)
            | (AggFunc::Union, SetUnion)
            | (AggFunc::Intersect, SetIntersect)
    )
}

/// Per-component aggregate-evaluation totals. `Cell`s because `Ctx` flows
/// immutably through the recursive step executor.
#[derive(Debug, Default)]
struct AggCounters {
    /// Streaming accumulators created (one per enumerated group).
    groups: Cell<u64>,
    /// Multiset elements folded across all groups.
    elements: Cell<u64>,
    /// Largest estimated footprint of a live accumulator table seen by
    /// any single aggregate evaluation (struct + set working states).
    peak_bytes: Cell<u64>,
}

/// Evaluation context: the program and the current database view (`J ∪ I`
/// merged, since CDB and LDB predicates are disjoint).
struct Ctx<'a> {
    program: &'a Program,
    db: &'a Interp,
    agg: &'a AggCounters,
}

/// A variable binding environment.
#[derive(Clone, Debug, Default)]
struct Binding {
    map: HashMap<Var, Value>,
}

impl Binding {
    fn new() -> Self {
        Self::default()
    }

    fn get(&self, v: Var) -> Option<&Value> {
        self.map.get(&v)
    }

    fn bind(&mut self, v: Var, val: Value) {
        self.map.insert(v, val);
    }

    fn unbind(&mut self, v: Var) {
        self.map.remove(&v);
    }
}

impl From<HashMap<Var, Value>> for Binding {
    fn from(map: HashMap<Var, Value>) -> Self {
        Binding { map }
    }
}

/// Buffered derivations of one `T_P` application, with the Definition 2.6
/// consistency check. Each buffered (pred, key) remembers the exec slot of
/// the rule that first derived it this round, so the apply loop can
/// attribute insert outcomes; `pushes` accumulates per-slot derivation
/// counts across the whole component.
struct RoundBuffer<'a> {
    program: &'a Program,
    check: bool,
    /// Relaxed (join-fold) derivations are intentionally partial values:
    /// resolve same-key collisions by lattice join instead of flagging a
    /// cost conflict.
    joining: bool,
    /// Exec slot of the rule currently firing (set before `exec_steps`).
    current: usize,
    /// PreM dominance pruning (`--optimize=prem`, proven component only):
    /// discard derivations whose cost is already dominated by the
    /// database value instead of buffering them. Such a derivation would
    /// be a no-op at apply time, so the model is unchanged; it does
    /// bypass the same-round Definition 2.6 check for the discarded
    /// value, which is why the rewrite additionally requires the program
    /// to be certified conflict-free.
    prune: bool,
    /// Demand filter (`--optimize=demand`): discard derivations not
    /// carrying the demanded constant at their predicate's stable
    /// position.
    demand: Option<&'a DemandFilter>,
    /// Derivations discarded by either filter.
    pruned: u64,
    /// Per-exec-slot head-derivation counts (component lifetime).
    pushes: &'a mut [u64],
    map: HashMap<(Pred, Arc<Tuple>), DerivedEntry>,
}

/// One buffered derivation of a round: the (possibly already joined)
/// cost, the exec slot of the first rule to derive the key this round
/// (insert-outcome attribution), and whether any contributing push came
/// from a join-fold relaxation. The parallel barrier merges same-key
/// entries from different worker shards: `joined` entries combine by
/// lattice join (through the mergeable accumulators), non-joined entries
/// with divergent costs are a Definition 2.6 conflict exactly as they
/// would be within one sequential buffer.
#[derive(Clone, Debug)]
pub(crate) struct DerivedEntry {
    cost: Option<Value>,
    slot: usize,
    joined: bool,
}

impl<'a> RoundBuffer<'a> {
    fn new(program: &'a Program, check: bool, pushes: &'a mut [u64]) -> Self {
        RoundBuffer {
            program,
            check,
            joining: false,
            current: 0,
            prune: false,
            demand: None,
            pruned: 0,
            pushes,
            map: HashMap::new(),
        }
    }

    fn push(
        &mut self,
        pred: Pred,
        key: Arc<Tuple>,
        cost: Option<Value>,
    ) -> Result<(), EvalError> {
        use std::collections::hash_map::Entry;
        self.pushes[self.current] += 1;
        match self.map.entry((pred, key)) {
            Entry::Vacant(slot) => {
                slot.insert(DerivedEntry {
                    cost,
                    slot: self.current,
                    joined: self.joining,
                });
                Ok(())
            }
            Entry::Occupied(mut slot) => {
                if slot.get().cost == cost {
                    slot.get_mut().joined |= self.joining;
                    return Ok(());
                }
                if self.check && !self.joining {
                    return Err(EvalError::CostConflict {
                        pred: self.program.pred_name(pred),
                        key: render_key(self.program, &slot.key().1),
                        value_a: slot
                            .get()
                            .cost
                            .as_ref()
                            .map(|v| v.display(self.program))
                            .unwrap_or_default(),
                        value_b: cost
                            .as_ref()
                            .map(|v| v.display(self.program))
                            .unwrap_or_default(),
                    });
                }
                // Lenient mode: lattice join. Attribution stays with the
                // first deriver.
                let domain = self
                    .program
                    .cost_spec(pred)
                    .map(|c| RuntimeDomain::new(c.domain));
                let entry = slot.get_mut();
                if let (Some(old), Some(new), Some(d)) = (entry.cost.clone(), &cost, &domain) {
                    entry.cost = Some(d.join(&old, new));
                }
                entry.joined |= self.joining;
                Ok(())
            }
        }
    }
}

fn render_key(program: &Program, key: &Tuple) -> String {
    key.0
        .iter()
        .map(|v| v.display(program))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Execute the remaining plan steps under `binding`, emitting head
/// derivations into `out`. `cap` observes matched body tuples and
/// aggregate witnesses; with [`NoCapture`] every hook compiles away.
fn exec_steps<C: Capture>(
    ctx: &Ctx<'_>,
    rule: &Rule,
    steps: &[Step],
    binding: &mut Binding,
    out: &mut RoundBuffer<'_>,
    cap: &mut C,
) -> Result<(), EvalError> {
    let Some((step, rest)) = steps.split_first() else {
        return emit_head(ctx, rule, binding, out, cap);
    };
    match step {
        Step::Atom { lit, .. } => {
            let Literal::Pos(atom) = &rule.body[*lit] else {
                unreachable!("Atom step on non-positive literal")
            };
            for_each_match(ctx, atom, binding, &mut |b, key, cost| {
                if C::ENABLED {
                    cap.push_atom(atom.pred, key, cost);
                }
                let r = exec_steps(ctx, rule, rest, b, out, cap);
                if C::ENABLED {
                    cap.pop_atom();
                }
                r
            })
        }
        Step::Assign {
            lit,
            target,
            target_is_lhs,
        } => {
            let Literal::Builtin(b) = &rule.body[*lit] else {
                unreachable!("Assign step on non-builtin")
            };
            let source = if *target_is_lhs { &b.rhs } else { &b.lhs };
            let Some(value) = eval_expr(source, binding) else {
                return Ok(()); // type mismatch: unsatisfiable
            };
            match binding.get(*target) {
                Some(existing) => {
                    if values_equal(existing, &value) {
                        exec_steps(ctx, rule, rest, binding, out, cap)
                    } else {
                        Ok(())
                    }
                }
                None => {
                    binding.bind(*target, value);
                    let r = exec_steps(ctx, rule, rest, binding, out, cap);
                    binding.unbind(*target);
                    r
                }
            }
        }
        Step::Test { lit } => {
            let Literal::Builtin(b) = &rule.body[*lit] else {
                unreachable!("Test step on non-builtin")
            };
            let (Some(l), Some(r)) = (eval_expr(&b.lhs, binding), eval_expr(&b.rhs, binding))
            else {
                return Ok(());
            };
            if compare_values(b.op, &l, &r) {
                exec_steps(ctx, rule, rest, binding, out, cap)
            } else {
                Ok(())
            }
        }
        Step::Neg { lit } => {
            let Literal::Neg(atom) = &rule.body[*lit] else {
                unreachable!("Neg step on non-negative literal")
            };
            if atom_holds(ctx, atom, binding) {
                Ok(())
            } else {
                exec_steps(ctx, rule, rest, binding, out, cap)
            }
        }
        Step::Agg {
            lit,
            conjunct_order,
            ..
        } => {
            let Literal::Agg(agg) = &rule.body[*lit] else {
                unreachable!("Agg step on non-aggregate")
            };
            eval_aggregate(
                ctx,
                rule,
                *lit,
                agg,
                conjunct_order,
                binding,
                cap,
                &mut |b, cap| exec_steps(ctx, rule, rest, b, out, cap),
            )
        }
    }
}

fn emit_head<C: Capture>(
    ctx: &Ctx<'_>,
    rule: &Rule,
    binding: &Binding,
    out: &mut RoundBuffer<'_>,
    cap: &mut C,
) -> Result<(), EvalError> {
    let spec = ctx.program.cost_spec(rule.head.pred);
    let has_cost = spec.is_some();
    let mut key = Vec::with_capacity(rule.head.args.len());
    for t in rule.head.key_args(has_cost) {
        key.push(resolve_term(t, binding).ok_or_else(|| {
            EvalError::Aggregate(format!(
                "unbound head variable in {}",
                ctx.program.display_rule(rule)
            ))
        })?);
    }
    let cost = match (spec, rule.head.cost_arg(has_cost)) {
        (Some(spec), Some(t)) => {
            let raw = resolve_term(t, binding).ok_or_else(|| {
                EvalError::Aggregate(format!(
                    "unbound head cost variable in {}",
                    ctx.program.display_rule(rule)
                ))
            })?;
            let domain = RuntimeDomain::new(spec.domain);
            Some(domain.coerce(raw).map_err(EvalError::Domain)?)
        }
        _ => None,
    };
    let key = Arc::new(Tuple::new(key));
    if let Some(filter) = out.demand {
        if let Some((pos, want)) = filter.get(&rule.head.pred) {
            if !key.0.get(*pos).is_some_and(|v| values_equal(v, want)) {
                out.pruned += 1;
                return Ok(());
            }
        }
    }
    if out.prune {
        if let (Some(new), Some(spec)) = (&cost, spec) {
            if let Some(Some(old)) = ctx.db.relation(rule.head.pred).and_then(|rel| rel.get(&key))
            {
                let domain = RuntimeDomain::new(spec.domain);
                if &domain.join(old, new) == old {
                    out.pruned += 1;
                    return Ok(());
                }
            }
        }
    }
    if C::ENABLED {
        cap.head(rule.head.pred, &key, &cost);
    }
    out.push(rule.head.pred, key, cost)
}

fn resolve_term(t: &Term, binding: &Binding) -> Option<Value> {
    match t {
        Term::Const(c) => Some(Value::from_const(*c)),
        Term::Var(v) => binding.get(*v).cloned(),
    }
}

/// Continuation invoked once per match with the extended binding, the
/// matched key, and its stored cost.
type MatchCont<'a> = dyn FnMut(&mut Binding, &Tuple, &Option<Value>) -> Result<(), EvalError> + 'a;

/// Enumerate matches of `atom` against the database under `binding`,
/// calling `k` for each extension with the matched key and its stored
/// cost. Handles default-value predicates: a fully-keyed lookup that
/// misses the core yields the default cost.
fn for_each_match(
    ctx: &Ctx<'_>,
    atom: &Atom,
    binding: &mut Binding,
    k: &mut MatchCont<'_>,
) -> Result<(), EvalError> {
    let has_cost = ctx.program.is_cost_pred(atom.pred);
    let key_args = atom.key_args(has_cost);
    let key_vals: Vec<Option<Value>> = key_args
        .iter()
        .map(|t| resolve_term(t, binding))
        .collect();
    let all_keys_bound = key_vals.iter().all(Option::is_some);

    // Fast path: fully bound key — direct lookup (with default fallback).
    if all_keys_bound {
        let key = Tuple::new(key_vals.into_iter().map(Option::unwrap).collect());
        let Some(cost) = ctx.db.cost(ctx.program, atom.pred, &key) else {
            return Ok(());
        };
        return try_cost_and_continue(atom, has_cost, &key, &cost, binding, k);
    }

    let Some(rel) = ctx.db.relation(atom.pred) else {
        return Ok(());
    };

    // Indexed probe on the signature of every bound key position: the
    // postings hold exactly the keys matching all bound positions, so the
    // per-key re-check below only confirms (and binds the free positions).
    // Plan-registered signatures hit a warm index; anything else (e.g.
    // aggregate-driver reruns with pre-bound groupings) builds its index
    // lazily. Sig 0 (nothing bound) walks the insertion log directly.
    let mut sig: Sig = 0;
    let mut projection: Vec<Value> = Vec::new();
    for (i, v) in key_vals.iter().enumerate() {
        if let Some(val) = v {
            if i < 32 {
                sig |= 1 << i;
                projection.push(val.clone());
            }
        }
    }
    let postings;
    let candidates: &[Arc<Tuple>] = if sig != 0 {
        match rel.probe(sig, &projection) {
            Some(hits) => {
                postings = hits;
                &postings
            }
            None => return Ok(()),
        }
    } else {
        rel.arc_keys()
    };

    for key in candidates {
        if key.arity() != key_args.len() {
            continue;
        }
        // Match each key position, tracking fresh bindings for undo.
        let mut fresh: Vec<Var> = Vec::new();
        let mut ok = true;
        for (i, t) in key_args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if Value::from_const(*c) != key[i] {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match binding.get(*v) {
                    Some(bound) => {
                        if *bound != key[i] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding.bind(*v, key[i].clone());
                        fresh.push(*v);
                    }
                },
            }
        }
        if ok {
            let cost = rel.get(key).cloned().unwrap_or(None);
            try_cost_and_continue(atom, has_cost, key, &cost, binding, k)?;
        }
        for v in fresh {
            binding.unbind(v);
        }
    }
    Ok(())
}

/// Match the cost argument (if any) and continue.
fn try_cost_and_continue(
    atom: &Atom,
    has_cost: bool,
    key: &Tuple,
    cost: &Option<Value>,
    binding: &mut Binding,
    k: &mut MatchCont<'_>,
) -> Result<(), EvalError> {
    if !has_cost {
        return k(binding, key, cost);
    }
    let cost_term = atom.cost_arg(true).expect("cost predicate");
    let Some(cv) = cost else {
        return Ok(());
    };
    match cost_term {
        Term::Const(c) => {
            if values_equal(&Value::from_const(*c), cv) {
                k(binding, key, cost)
            } else {
                Ok(())
            }
        }
        Term::Var(v) => match binding.get(*v) {
            Some(bound) => {
                if values_equal(bound, cv) {
                    k(binding, key, cost)
                } else {
                    Ok(())
                }
            }
            None => {
                binding.bind(*v, cv.clone());
                let r = k(binding, key, cost);
                binding.unbind(*v);
                r
            }
        },
    }
}

/// Match an atom against an explicit (key, cost) pair — used by semi-naive
/// drivers.
fn match_atom_against(
    program: &Program,
    atom: &Atom,
    key: &Tuple,
    cost: &Option<Value>,
    binding: &mut Binding,
) -> bool {
    let has_cost = program.is_cost_pred(atom.pred);
    let key_args = atom.key_args(has_cost);
    if key_args.len() != key.arity() {
        return false;
    }
    for (i, t) in key_args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                if Value::from_const(*c) != key[i] {
                    return false;
                }
            }
            Term::Var(v) => match binding.get(*v) {
                Some(bound) => {
                    if *bound != key[i] {
                        return false;
                    }
                }
                None => binding.bind(*v, key[i].clone()),
            },
        }
    }
    if has_cost {
        let Some(cv) = cost else { return false };
        match atom.cost_arg(true).expect("cost predicate") {
            Term::Const(c) => {
                if !values_equal(&Value::from_const(*c), cv) {
                    return false;
                }
            }
            Term::Var(v) => match binding.get(*v) {
                Some(bound) => {
                    if !values_equal(bound, cv) {
                        return false;
                    }
                }
                None => binding.bind(*v, cv.clone()),
            },
        }
    }
    true
}

/// Does a ground atom hold in the database (with default fallback)?
fn atom_holds(ctx: &Ctx<'_>, atom: &Atom, binding: &Binding) -> bool {
    let has_cost = ctx.program.is_cost_pred(atom.pred);
    let key: Option<Vec<Value>> = atom
        .key_args(has_cost)
        .iter()
        .map(|t| resolve_term(t, binding))
        .collect();
    let Some(key) = key else { return false };
    let key = Tuple::new(key);
    let Some(cost) = ctx.db.cost(ctx.program, atom.pred, &key) else {
        return false;
    };
    if !has_cost {
        return true;
    }
    let Some(want) = atom
        .cost_arg(true)
        .and_then(|t| resolve_term(t, binding))
    else {
        return false;
    };
    cost.is_some_and(|cv| values_equal(&cv, &want))
}

/// Evaluate the aggregate subgoal: enumerate the conjunction, group, apply
/// the function, and continue per satisfying (grouping, result) binding.
#[allow(clippy::too_many_arguments)]
fn eval_aggregate<C: Capture>(
    ctx: &Ctx<'_>,
    rule: &Rule,
    lit: usize,
    agg: &maglog_datalog::Aggregate,
    conjunct_order: &[usize],
    binding: &mut Binding,
    cap: &mut C,
    k: &mut dyn FnMut(&mut Binding, &mut C) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let grouping_vars = rule.aggregate_grouping_vars(lit);

    // Enumerate all assignments of the conjunction (restricted by the
    // current binding), folding each multiset element straight into its
    // group's streaming accumulator — no per-group element buffering. The
    // fold order per group is the enumeration order, same as before.
    // Under capture, each element additionally buffers the conjunct tuples
    // that supplied it (the trail slice since `mark`), so the winner's
    // supports can be reported without re-deriving them.
    let mark = if C::ENABLED { cap.trail_mark() } else { 0 };
    let mut groups: HashMap<Vec<Value>, aggregate::Accumulator> = HashMap::new();
    let mut buffers: HashMap<Vec<Value>, Vec<(Value, Vec<BodyAtom>)>> = HashMap::new();
    {
        let mut scratch = binding.clone();
        enumerate_conjuncts(
            ctx,
            agg,
            conjunct_order,
            0,
            &mut scratch,
            cap,
            &mut |b: &Binding, cap: &mut C| {
                let gv: Vec<Value> = grouping_vars
                    .iter()
                    .map(|v| b.get(*v).cloned().expect("grouping bound at collection"))
                    .collect();
                let element = match agg.multiset_var {
                    Some(e) => b.get(e).cloned().expect("multiset var bound"),
                    None => Value::Bool(true),
                };
                if C::ENABLED {
                    buffers
                        .entry(gv.clone())
                        .or_default()
                        .push((element.clone(), cap.trail_since(mark)));
                }
                groups
                    .entry(gv)
                    .or_insert_with(|| aggregate::Accumulator::new(agg.func))
                    .push(&element);
            },
        )?;
    }

    // For `=` with fully bound groupings, the (possibly empty) group for
    // the bound values must be considered even if no tuple matched.
    let groupings_bound = grouping_vars.iter().all(|v| binding.get(*v).is_some());
    if agg.eq == AggEq::Total {
        if !groupings_bound {
            return Err(EvalError::Aggregate(format!(
                "`=` aggregate with unbound grouping variables in {}",
                ctx.program.display_rule(rule)
            )));
        }
        let gv: Vec<Value> = grouping_vars
            .iter()
            .map(|v| binding.get(*v).cloned().unwrap())
            .collect();
        groups
            .entry(gv)
            .or_insert_with(|| aggregate::Accumulator::new(agg.func));
    }

    ctx.agg.groups.set(ctx.agg.groups.get() + groups.len() as u64);
    let mut elements = 0u64;
    let mut live_bytes =
        (groups.len() * std::mem::size_of::<aggregate::Accumulator>()) as u64;
    for acc in groups.values() {
        elements += acc.count() as u64;
        live_bytes += acc.heap_bytes() as u64;
    }
    ctx.agg.elements.set(ctx.agg.elements.get() + elements);
    ctx.agg
        .peak_bytes
        .set(ctx.agg.peak_bytes.get().max(live_bytes));

    for (gv, acc) in groups {
        let elements = acc.count();
        let winner = acc.winner();
        let Some(result) = acc.finish() else {
            continue; // undefined (empty avg / type error): unsatisfiable
        };
        // Bind grouping vars (fresh ones only) and the result.
        let mut fresh: Vec<Var> = Vec::new();
        let mut ok = true;
        for (v, val) in grouping_vars.iter().zip(&gv) {
            match binding.get(*v) {
                Some(bound) => {
                    if bound != val {
                        ok = false;
                        break;
                    }
                }
                None => {
                    binding.bind(*v, val.clone());
                    fresh.push(*v);
                }
            }
        }
        if ok {
            if C::ENABLED {
                let (witnesses, witnesses_total) =
                    select_witnesses(winner, buffers.remove(&gv).unwrap_or_default());
                cap.push_agg(AggWitness {
                    lit,
                    func: agg.func,
                    result: result.clone(),
                    elements,
                    witnesses,
                    witnesses_total,
                    partial: false,
                });
            }
            match &agg.result {
                Term::Const(c) => {
                    if values_equal(&Value::from_const(*c), &result) {
                        k(binding, cap)?;
                    }
                }
                Term::Var(rv) => match binding.get(*rv) {
                    Some(bound) => {
                        if values_equal(bound, &result) {
                            k(binding, cap)?;
                        }
                    }
                    None => {
                        binding.bind(*rv, result.clone());
                        k(binding, cap)?;
                        binding.unbind(*rv);
                    }
                },
            }
            if C::ENABLED {
                cap.pop_agg();
            }
        }
        for v in fresh {
            binding.unbind(v);
        }
    }
    let _ = AggFunc::Count; // silence unused-import lints in some cfgs
    Ok(())
}

/// Enumerate all satisfying assignments of the aggregate's conjunction in
/// the planned order.
fn enumerate_conjuncts<C: Capture>(
    ctx: &Ctx<'_>,
    agg: &maglog_datalog::Aggregate,
    order: &[usize],
    depth: usize,
    binding: &mut Binding,
    cap: &mut C,
    emit: &mut dyn FnMut(&Binding, &mut C),
) -> Result<(), EvalError> {
    if depth == order.len() {
        emit(binding, cap);
        return Ok(());
    }
    let atom = &agg.conjuncts[order[depth]];
    for_each_match(ctx, atom, binding, &mut |b, key, cost| {
        if C::ENABLED {
            cap.push_atom(atom.pred, key, cost);
        }
        let r = enumerate_conjuncts(ctx, agg, order, depth + 1, b, cap, emit);
        if C::ENABLED {
            cap.pop_atom();
        }
        r
    })
}

/// Evaluate an arithmetic expression. `None` on unbound variables or type
/// mismatches (the branch is then unsatisfiable).
fn eval_expr(e: &Expr, binding: &Binding) -> Option<Value> {
    match e {
        Expr::Term(t) => resolve_term(t, binding),
        Expr::Neg(inner) => {
            let v = eval_expr(inner, binding)?;
            Some(Value::num(-v.as_f64()?))
        }
        Expr::Bin(op, l, r) => {
            let lv = eval_expr(l, binding)?;
            let rv = eval_expr(r, binding)?;
            let (a, b) = (lv.as_f64()?, rv.as_f64()?);
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
            };
            if out.is_nan() {
                None
            } else {
                Some(Value::num(out))
            }
        }
    }
}

/// Structural equality with numeric/boolean bridging (`1 = true`).
fn values_equal(a: &Value, b: &Value) -> bool {
    if a == b {
        return true;
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

fn compare_values(op: CmpOp, a: &Value, b: &Value) -> bool {
    match op {
        CmpOp::Eq => values_equal(a, b),
        CmpOp::Ne => !values_equal(a, b),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                return false;
            };
            match op {
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
                _ => unreachable!(),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Why-not probing
// ---------------------------------------------------------------------

/// Probe every rule whose head predicate matches an absent (or
/// differently-costed) goal against the *final* model: unify the head with
/// the goal constants, then walk the rule's plan recording the deepest
/// subgoal any binding reached — the first failing subgoal is the why-not
/// answer.
pub fn why_not(program: &Program, db: &Interp, goal: &Goal) -> WhyNotReport {
    let goal_text = format!(
        "{}({})",
        program.pred_name(goal.pred),
        goal.key
            .0
            .iter()
            .map(|v| v.display(program))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let present = db
        .cost(program, goal.pred, &goal.key)
        .map(|c| c.map(|v| v.display(program)));
    let counters = AggCounters::default();
    let ctx = Ctx {
        program,
        db,
        agg: &counters,
    };
    let has_cost = program.is_cost_pred(goal.pred);
    let mut rules = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        if rule.head.pred != goal.pred {
            continue;
        }
        let rule_text = program.display_rule(rule);
        let mut binding = Binding::new();
        let mut unified = rule.head.key_args(has_cost).len() == goal.key.arity();
        if unified {
            for (t, val) in rule.head.key_args(has_cost).iter().zip(goal.key.0.iter()) {
                match t {
                    Term::Const(c) => {
                        if !values_equal(&Value::from_const(*c), val) {
                            unified = false;
                            break;
                        }
                    }
                    Term::Var(v) => match binding.get(*v) {
                        Some(bound) => {
                            if !values_equal(bound, val) {
                                unified = false;
                                break;
                            }
                        }
                        None => binding.bind(*v, val.clone()),
                    },
                }
            }
        }
        if !unified {
            rules.push(RuleProbe {
                rule: ri,
                rule_text,
                unified: false,
                reached: 0,
                total: 0,
                failed: None,
                derivable: None,
            });
            continue;
        }
        let seed: BTreeSet<Var> = binding.map.keys().copied().collect();
        let plan = match plan_rule(program, rule, &seed, None) {
            Ok(p) => p,
            Err(e) => {
                rules.push(RuleProbe {
                    rule: ri,
                    rule_text,
                    unified: true,
                    reached: 0,
                    total: 0,
                    failed: Some(format!("(unplannable: {e})")),
                    derivable: None,
                });
                continue;
            }
        };
        let total = plan.steps.len();
        let mut st = ProbeState::default();
        // A probe error (e.g. a `=` aggregate whose groupings the goal
        // left unbound) leaves the failure description of the step that
        // raised it — exactly the answer we want.
        let _ = probe_steps(&ctx, rule, &plan.steps, 0, &mut binding, &mut st);
        let derivable = if st.satisfied {
            Some(match (&st.derived_cost, has_cost) {
                (Some(v), true) => v.display(program),
                _ => "true".to_string(),
            })
        } else {
            None
        };
        rules.push(RuleProbe {
            rule: ri,
            rule_text,
            unified: true,
            reached: st.frontier,
            total,
            failed: if st.satisfied { None } else { st.desc },
            derivable,
        });
    }
    WhyNotReport {
        goal: goal_text,
        present,
        rules,
    }
}

#[derive(Default)]
struct ProbeState {
    /// Deepest plan step any binding attempted.
    frontier: usize,
    /// That step's literal, rendered with the bindings that reached it.
    desc: Option<String>,
    satisfied: bool,
    derived_cost: Option<Value>,
}

fn probe_steps(
    ctx: &Ctx<'_>,
    rule: &Rule,
    steps: &[Step],
    idx: usize,
    binding: &mut Binding,
    st: &mut ProbeState,
) -> Result<(), EvalError> {
    let Some(step) = steps.get(idx) else {
        if !st.satisfied {
            st.satisfied = true;
            let has_cost = ctx.program.is_cost_pred(rule.head.pred);
            st.derived_cost = rule
                .head
                .cost_arg(has_cost)
                .and_then(|t| resolve_term(t, binding));
        }
        return Ok(());
    };
    if st.desc.is_none() || idx > st.frontier {
        st.frontier = idx;
        st.desc = Some(describe_step(ctx.program, rule, step, binding));
    }
    match step {
        Step::Atom { lit, .. } => {
            let Literal::Pos(atom) = &rule.body[*lit] else {
                unreachable!("Atom step on non-positive literal")
            };
            for_each_match(ctx, atom, binding, &mut |b, _key, _cost| {
                probe_steps(ctx, rule, steps, idx + 1, b, st)
            })
        }
        Step::Assign {
            lit,
            target,
            target_is_lhs,
        } => {
            let Literal::Builtin(b) = &rule.body[*lit] else {
                unreachable!("Assign step on non-builtin")
            };
            let source = if *target_is_lhs { &b.rhs } else { &b.lhs };
            let Some(value) = eval_expr(source, binding) else {
                return Ok(());
            };
            match binding.get(*target) {
                Some(existing) => {
                    if values_equal(existing, &value) {
                        probe_steps(ctx, rule, steps, idx + 1, binding, st)
                    } else {
                        Ok(())
                    }
                }
                None => {
                    binding.bind(*target, value);
                    let r = probe_steps(ctx, rule, steps, idx + 1, binding, st);
                    binding.unbind(*target);
                    r
                }
            }
        }
        Step::Test { lit } => {
            let Literal::Builtin(b) = &rule.body[*lit] else {
                unreachable!("Test step on non-builtin")
            };
            let (Some(l), Some(r)) = (eval_expr(&b.lhs, binding), eval_expr(&b.rhs, binding))
            else {
                return Ok(());
            };
            if compare_values(b.op, &l, &r) {
                probe_steps(ctx, rule, steps, idx + 1, binding, st)
            } else {
                Ok(())
            }
        }
        Step::Neg { lit } => {
            let Literal::Neg(atom) = &rule.body[*lit] else {
                unreachable!("Neg step on non-negative literal")
            };
            if atom_holds(ctx, atom, binding) {
                Ok(())
            } else {
                probe_steps(ctx, rule, steps, idx + 1, binding, st)
            }
        }
        Step::Agg {
            lit,
            conjunct_order,
            ..
        } => {
            let Literal::Agg(agg) = &rule.body[*lit] else {
                unreachable!("Agg step on non-aggregate")
            };
            eval_aggregate(
                ctx,
                rule,
                *lit,
                agg,
                conjunct_order,
                binding,
                &mut NoCapture,
                &mut |b, _cap| probe_steps(ctx, rule, steps, idx + 1, b, st),
            )
        }
    }
}

fn step_lit(step: &Step) -> usize {
    match step {
        Step::Atom { lit, .. }
        | Step::Assign { lit, .. }
        | Step::Test { lit }
        | Step::Neg { lit }
        | Step::Agg { lit, .. } => *lit,
    }
}

fn describe_step(program: &Program, rule: &Rule, step: &Step, binding: &Binding) -> String {
    subst_literal(program, &rule.body[step_lit(step)], binding)
}

/// Render a term with the probe's current bindings substituted in.
fn subst_term(program: &Program, t: &Term, binding: &Binding) -> String {
    match t {
        Term::Const(c) => Value::from_const(*c).display(program),
        Term::Var(v) => match binding.get(*v) {
            Some(val) => val.display(program),
            None => program.var_name(*v),
        },
    }
}

fn subst_atom(program: &Program, atom: &Atom, binding: &Binding) -> String {
    format!(
        "{}({})",
        program.pred_name(atom.pred),
        atom.args
            .iter()
            .map(|t| subst_term(program, t, binding))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn subst_expr(program: &Program, e: &Expr, binding: &Binding) -> String {
    match e {
        Expr::Term(t) => subst_term(program, t, binding),
        Expr::Neg(inner) => format!("-({})", subst_expr(program, inner, binding)),
        Expr::Bin(op, l, r) => {
            let ls = subst_expr(program, l, binding);
            let rs = subst_expr(program, r, binding);
            match op {
                BinOp::Add => format!("{ls} + {rs}"),
                BinOp::Sub => format!("{ls} - {rs}"),
                BinOp::Mul => format!("{ls} * {rs}"),
                BinOp::Div => format!("{ls} / {rs}"),
                BinOp::Min => format!("min({ls}, {rs})"),
                BinOp::Max => format!("max({ls}, {rs})"),
            }
        }
    }
}

fn subst_literal(program: &Program, lit: &Literal, binding: &Binding) -> String {
    match lit {
        Literal::Pos(a) => subst_atom(program, a, binding),
        Literal::Neg(a) => format!("! {}", subst_atom(program, a, binding)),
        Literal::Builtin(b) => {
            let op = match b.op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!(
                "{} {op} {}",
                subst_expr(program, &b.lhs, binding),
                subst_expr(program, &b.rhs, binding)
            )
        }
        Literal::Agg(agg) => {
            let eq = match agg.eq {
                AggEq::Total => "=",
                AggEq::Restricted => "=r",
            };
            let mvar = agg
                .multiset_var
                .map(|v| format!(" {}", program.var_name(v)))
                .unwrap_or_default();
            let conj: Vec<String> = agg
                .conjuncts
                .iter()
                .map(|a| subst_atom(program, a, binding))
                .collect();
            let conj = if conj.len() == 1 {
                conj[0].clone()
            } else {
                format!("[{}]", conj.join(", "))
            };
            format!(
                "{} {eq} {}{mvar} : {conj}",
                subst_term(program, &agg.result, binding),
                agg.func.name()
            )
        }
    }
}

// `Const` is referenced by pattern matches above; keep the import honest.
#[allow(unused)]
fn _const_witness(c: Const) -> Const {
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn run(src: &str) -> (maglog_datalog::Program, Model) {
        let p = parse_program(src).unwrap();
        let model = MonotonicEngine::new(&p).evaluate(&Edb::new()).unwrap();
        (p, model)
    }

    #[test]
    fn plain_datalog_transitive_closure() {
        let (p, m) = run(
            r#"
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), e(Z, Y).
            "#,
        );
        assert!(m.holds(&p, "tc", &["a", "d"]));
        assert!(m.holds(&p, "tc", &["b", "d"]));
        assert!(!m.holds(&p, "tc", &["d", "a"]));
        assert_eq!(m.tuples_of(&p, "tc").len(), 6);
    }

    #[test]
    fn example_3_1_shortest_path_minimal_model() {
        let (p, m) = run(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 1).
            arc(b, b, 0).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        );
        // The paper's M1: s(a,b,1), s(b,b,0) — NOT M2's s(a,b,0).
        assert_eq!(m.cost_of(&p, "s", &["a", "b"]).unwrap().as_f64(), Some(1.0));
        assert_eq!(m.cost_of(&p, "s", &["b", "b"]).unwrap().as_f64(), Some(0.0));
        assert_eq!(
            m.cost_of(&p, "path", &["a", "b", "b"]).unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 2). arc(b, c, 3). arc(c, a, 4). arc(a, c, 10).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let p = parse_program(src).unwrap();
        let naive = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy: Strategy::Naive,
                ..Default::default()
            },
        )
        .evaluate(&Edb::new())
        .unwrap();
        let semi = MonotonicEngine::new(&p).evaluate(&Edb::new()).unwrap();
        assert_eq!(naive.render(&p), semi.render(&p));
        assert_eq!(
            semi.cost_of(&p, "s", &["a", "c"]).unwrap().as_f64(),
            Some(5.0)
        );
    }

    #[test]
    fn company_control_example_2_7() {
        // a owns 40% of b directly; a owns 60% of c; c owns 20% of b.
        // a controls c (0.6 > 0.5), hence controls 0.4 + 0.2 of b.
        let (p, m) = run(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            s(a, b, 0.4). s(a, c, 0.6). s(c, b, 0.2).
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        );
        assert!(m.holds(&p, "c", &["a", "c"]));
        assert!(m.holds(&p, "c", &["a", "b"]));
        let frac = m.cost_of(&p, "m", &["a", "b"]).unwrap().as_f64().unwrap();
        assert!((frac - 0.6).abs() < 1e-12, "got {frac}");
    }

    #[test]
    fn party_example_4_3_with_cyclic_knows() {
        // ann requires 0; bob requires 1 and knows ann; cal and dan know
        // only each other and require 1: they stay undecided... no — in the
        // minimal model they simply do not come.
        let (p, m) = run(
            r#"
            requires(ann, 0). requires(bob, 1). requires(cal, 1). requires(dan, 1).
            knows(bob, ann). knows(cal, dan). knows(dan, cal).
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        );
        assert!(m.holds(&p, "coming", &["ann"]));
        assert!(m.holds(&p, "coming", &["bob"]));
        assert!(!m.holds(&p, "coming", &["cal"]));
        assert!(!m.holds(&p, "coming", &["dan"]));
    }

    #[test]
    fn circuit_example_4_4_with_cycle() {
        // AND gate g1 feeding itself evaluates to false (minimal behaviour);
        // OR gate g2 with a true input is true even on a cycle with g3.
        let (p, m) = run(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            input(w1, 1). input(w2, 0).
            gate(g1, and). gate(g2, or). gate(g3, or).
            connect(g1, g1). connect(g1, w1).
            connect(g2, w1). connect(g2, g3).
            connect(g3, g2). connect(g3, w2).
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            constraint :- gate(G, or), gate(G, and).
            constraint :- gate(G, T), input(G, C).
            "#,
        );
        assert_eq!(m.cost_of(&p, "t", &["g1"]), Some(Value::Bool(false)));
        assert_eq!(m.cost_of(&p, "t", &["g2"]), Some(Value::Bool(true)));
        assert_eq!(m.cost_of(&p, "t", &["g3"]), Some(Value::Bool(true)));
        assert_eq!(m.cost_of(&p, "t", &["w2"]), Some(Value::Bool(false)));
    }

    #[test]
    fn halfsum_example_5_1_reaches_the_limit() {
        // The paper's least model is {p(a,1), p(b,1)}; T_P is monotonic but
        // not continuous, so ω iterations are needed — IEEE-754 rounding
        // reaches the limit exactly after ~55 rounds (the ulp near 1.0 is
        // 2^-53, and round-to-even closes the final gap).
        let (p, m) = run(
            r#"
            declare pred p/2 cost nonneg_real.
            p(b, 1).
            p(a, C) :- C =r halfsum D : p(X, D).
            "#,
        );
        assert_eq!(m.cost_of(&p, "p", &["a"]).unwrap().as_f64(), Some(1.0));
        assert_eq!(m.cost_of(&p, "p", &["b"]).unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn negative_cycle_hits_round_cap() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 1). arc(b, a, -2).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        )
        .unwrap();
        let engine = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                max_rounds: 50,
                ..Default::default()
            },
        );
        match engine.evaluate(&Edb::new()) {
            Err(EvalError::NonTermination { .. }) => {}
            other => panic!("expected NonTermination, got {other:?}"),
        }
    }

    #[test]
    fn greedy_matches_seminaive_on_nonneg_graphs() {
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 2). arc(b, c, 3). arc(c, a, 4). arc(a, c, 10). arc(c, c, 0).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let p = parse_program(src).unwrap();
        let semi = MonotonicEngine::new(&p).evaluate(&Edb::new()).unwrap();
        let greedy = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy: Strategy::Greedy,
                ..Default::default()
            },
        )
        .evaluate(&Edb::new())
        .unwrap();
        assert_eq!(semi.render(&p), greedy.render(&p));
    }

    #[test]
    fn greedy_rejects_negative_weights() {
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 5). arc(b, c, -3).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let p = parse_program(src).unwrap();
        let engine = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy: Strategy::Greedy,
                ..Default::default()
            },
        );
        match engine.evaluate(&Edb::new()) {
            Err(EvalError::GreedyViolation { .. }) => {}
            other => panic!("expected GreedyViolation, got {other:?}"),
        }
    }

    #[test]
    fn greedy_falls_back_on_ineligible_components() {
        // Company control: nonneg_real sums — not greedy-eligible; the
        // strategy silently falls back to semi-naive and stays correct.
        let src = r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            s(a, b, 0.4). s(a, c, 0.6). s(c, b, 0.2).
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
        "#;
        let p = parse_program(src).unwrap();
        let greedy = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy: Strategy::Greedy,
                ..Default::default()
            },
        )
        .evaluate(&Edb::new())
        .unwrap();
        assert!(greedy.holds(&p, "c", &["a", "b"]));
        assert!(greedy.holds(&p, "c", &["a", "c"]));
    }

    #[test]
    fn greedy_handles_cdb_edb_facts() {
        // A pre-loaded s fact competes with derived values; the cheaper
        // derived value must win.
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 1).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let p = parse_program(src).unwrap();
        let mut edb = Edb::new();
        edb.push_cost_fact(&p, "s", &["a", "b"], 9.0);
        let greedy = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy: Strategy::Greedy,
                ..Default::default()
            },
        )
        .evaluate(&edb)
        .unwrap();
        assert_eq!(
            greedy.cost_of(&p, "s", &["a", "b"]).unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn uncertified_program_is_refused() {
        let p = parse_program(
            r#"
            declare pred q/3 cost max_real.
            declare pred p/2 cost max_real.
            p(X, C) :- q(X, Y, C).
            "#,
        )
        .unwrap();
        match MonotonicEngine::new(&p).evaluate(&Edb::new()) {
            Err(EvalError::NotCertified(_)) => {}
            other => panic!("expected NotCertified, got {other:?}"),
        }
    }

    #[test]
    fn cost_conflict_is_detected_when_unchecked() {
        let p = parse_program(
            r#"
            declare pred q/2 cost min_real.
            declare pred r/2 cost min_real.
            declare pred p/2 cost min_real.
            q(x, 1). r(x, 2).
            p(X, C) :- q(X, C).
            p(X, C) :- r(X, C).
            "#,
        )
        .unwrap();
        let engine = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                allow_unchecked: true,
                ..Default::default()
            },
        );
        match engine.evaluate(&Edb::new()) {
            Err(EvalError::CostConflict { .. }) => {}
            other => panic!("expected CostConflict, got {other:?}"),
        }
    }

    #[test]
    fn grades_example_2_1() {
        let (p, m) = run(
            r#"
            declare pred record/3 cost max_real.
            declare pred s_avg/2 cost max_real.
            declare pred c_avg/2 cost max_real.
            declare pred all_avg/1 cost max_real.
            declare pred class_count/2 cost nat.
            record(john, db, 80). record(john, os, 60).
            record(mary, db, 90). record(mary, ai, 70).
            s_avg(S, G) :- G =r avg G2 : record(S, C, G2).
            c_avg(C, G) :- G =r avg G2 : record(S, C, G2).
            all_avg(G) :- G =r avg G2 : c_avg(S, G2).
            class_count(C, N) :- N =r count : record(S, C, G).
            "#,
        );
        assert_eq!(
            m.cost_of(&p, "s_avg", &["john"]).unwrap().as_f64(),
            Some(70.0)
        );
        assert_eq!(
            m.cost_of(&p, "c_avg", &["db"]).unwrap().as_f64(),
            Some(85.0)
        );
        // all_avg over class averages {85, 60, 70} = 71.666...
        let g = m.cost_of(&p, "all_avg", &[]).unwrap().as_f64().unwrap();
        assert!((g - (85.0 + 60.0 + 70.0) / 3.0).abs() < 1e-9);
        assert_eq!(
            m.cost_of(&p, "class_count", &["db"]).unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn alt_class_count_counts_empty_classes() {
        let (p, m) = run(
            r#"
            declare pred record/3 cost max_real.
            declare pred alt_class_count/2 cost nat.
            courses(db). courses(logic).
            record(john, db, 80).
            alt_class_count(C, N) :- courses(C), N = count : record(S, C, G).
            "#,
        );
        assert_eq!(
            m.cost_of(&p, "alt_class_count", &["db"]).unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.cost_of(&p, "alt_class_count", &["logic"])
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
    }

    const OPT_SHORTEST: &str = r#"
        declare pred arc/3 cost min_real.
        declare pred path/4 cost min_real.
        declare pred s/3 cost min_real.
        arc(a, b, 2). arc(b, c, 3). arc(c, a, 4). arc(a, c, 10).
        arc(b, d, 1). arc(d, c, 1).
        path(X, direct, Y, C) :- arc(X, Y, C).
        path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
        s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        constraint :- arc(direct, Z, C).
    "#;

    fn run_opt(src: &str, optimize: Optimize) -> (maglog_datalog::Program, Model) {
        let p = parse_program(src).unwrap();
        let model = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                optimize,
                ..Default::default()
            },
        )
        .evaluate(&Edb::new())
        .unwrap();
        (p, model)
    }

    #[test]
    fn prem_pruning_preserves_the_model_and_cuts_derivations() {
        let (p, plain) = run(OPT_SHORTEST);
        let (p2, optimized) = run_opt(
            OPT_SHORTEST,
            Optimize {
                prem: true,
                demand: false,
            },
        );
        assert_eq!(plain.render(&p), optimized.render(&p2));
        assert_eq!(plain.stats().pruned, 0);
        assert!(plain.stats().optimizations.is_empty());
        assert!(optimized.stats().pruned > 0);
        assert!(
            optimized.stats().derivations < plain.stats().derivations,
            "{} !< {}",
            optimized.stats().derivations,
            plain.stats().derivations
        );
        assert!(optimized
            .stats()
            .optimizations
            .iter()
            .any(|l| l.contains("premappable")));
    }

    #[test]
    fn refused_pushdown_is_never_pruned_nonlinear_recursion() {
        // Doubling (non-linear) recursion: the PreM proof refuses the
        // pushdown, so `--optimize=prem` must change nothing.
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 2). arc(b, c, 3). arc(c, d, 4).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), s(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            constraint :- s(direct, Z, C).
        "#;
        let (p, plain) = run(src);
        let (p2, optimized) = run_opt(
            src,
            Optimize {
                prem: true,
                demand: false,
            },
        );
        assert_eq!(plain.render(&p), optimized.render(&p2));
        assert_eq!(optimized.stats().pruned, 0);
        assert_eq!(
            optimized.stats().derivations,
            plain.stats().derivations,
            "a refused pushdown must not change the evaluation"
        );
        assert!(optimized
            .stats()
            .optimizations
            .iter()
            .any(|l| l.contains("refused")));
    }

    #[test]
    fn refused_pushdown_is_never_pruned_total_aggregate() {
        // Example 4.3's party program: the count aggregate uses total
        // equality, which is not a join fold — refusal, no pruning.
        let src = r#"
            requires(ann, 0). requires(bob, 1). requires(cal, 1). requires(dan, 1).
            knows(bob, ann). knows(cal, dan). knows(dan, cal).
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
        "#;
        let (p, plain) = run(src);
        let (p2, optimized) = run_opt(
            src,
            Optimize {
                prem: true,
                demand: false,
            },
        );
        assert_eq!(plain.render(&p), optimized.render(&p2));
        assert_eq!(optimized.stats().pruned, 0);
        assert!(optimized
            .stats()
            .optimizations
            .iter()
            .any(|l| l.contains("refused")));
    }

    #[test]
    fn demand_restricted_goal_agrees_with_the_full_model() {
        use crate::provenance::parse_goal;
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 2). arc(b, c, 3). arc(c, a, 4). arc(a, c, 10).
            arc(b, d, 1). arc(d, c, 1).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            e(p, q). e(q, r).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), e(Z, Y).
            constraint :- arc(direct, Z, C).
        "#;
        let p = parse_program(src).unwrap();
        let full = MonotonicEngine::new(&p).evaluate(&Edb::new()).unwrap();
        let goal = parse_goal(&p, "s(a, c)").unwrap();
        let engine = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                optimize: Optimize {
                    prem: false,
                    demand: true,
                },
                ..Default::default()
            },
        );
        let m = engine.evaluate_goal(&Edb::new(), &goal).unwrap();
        // Every s-fact from the demanded source survives, at its exact
        // full-model cost.
        for target in ["b", "c", "d"] {
            assert_eq!(
                m.cost_of(&p, "s", &["a", target]),
                full.cost_of(&p, "s", &["a", target]),
                "s(a, {target})"
            );
        }
        // The unrelated tc component was skipped outright...
        assert!(m.stats().rounds.contains(&0));
        assert!(m.tuples_of(&p, "tc").is_empty());
        // ...and derivations from other sources were filtered.
        assert!(m.stats().pruned > 0);
        assert!(m.stats().derivations < full.stats().derivations);
        assert!(m
            .stats()
            .optimizations
            .iter()
            .any(|l| l.contains("demand: restricted")));
    }

    #[test]
    fn demand_goal_without_a_stable_binding_still_answers() {
        use crate::provenance::parse_goal;
        // The party component admits no uniform binding: the engine must
        // fall back to cone-only restriction and still answer correctly.
        let src = r#"
            requires(ann, 0). requires(bob, 1). requires(cal, 1). requires(dan, 1).
            knows(bob, ann). knows(cal, dan). knows(dan, cal).
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
        "#;
        let p = parse_program(src).unwrap();
        let goal = parse_goal(&p, "coming(bob)").unwrap();
        let engine = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                optimize: Optimize {
                    prem: false,
                    demand: true,
                },
                ..Default::default()
            },
        );
        let m = engine.evaluate_goal(&Edb::new(), &goal).unwrap();
        assert!(m.holds(&p, "coming", &["bob"]));
        assert!(!m.holds(&p, "coming", &["cal"]));
        assert!(m
            .stats()
            .optimizations
            .iter()
            .any(|l| l.contains("no stable binding")));
    }

    /// Evaluate `src` at `workers` workers under `strategy`.
    fn run_parallel(src: &str, strategy: Strategy, workers: usize) -> (Program, Model) {
        let p = parse_program(src).unwrap();
        let m = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                strategy,
                workers,
                ..Default::default()
            },
        )
        .evaluate(&Edb::new())
        .unwrap();
        (p, m)
    }

    const SHORTEST_PATH_SRC: &str = r#"
        declare pred arc/3 cost min_real.
        declare pred path/4 cost min_real.
        declare pred s/3 cost min_real.
        arc(a, b, 2). arc(b, c, 3). arc(c, a, 4). arc(a, c, 10).
        arc(c, d, 1). arc(d, b, 2). arc(b, d, 7).
        path(X, direct, Y, C) :- arc(X, Y, C).
        path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
        s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        constraint :- arc(direct, Z, C).
    "#;

    #[test]
    fn parallel_matches_sequential_on_shortest_path() {
        let (p, seq) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, 1);
        for workers in [2, 3, 4] {
            let (_, par) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, workers);
            assert_eq!(seq.render(&p), par.render(&p), "workers={workers}");
        }
    }

    #[test]
    fn parallel_naive_matches_sequential_naive() {
        let (p, seq) = run_parallel(SHORTEST_PATH_SRC, Strategy::Naive, 1);
        let (_, par) = run_parallel(SHORTEST_PATH_SRC, Strategy::Naive, 4);
        assert_eq!(seq.render(&p), par.render(&p));
    }

    #[test]
    fn parallel_counters_match_sequential() {
        // Seed-hash sharding fires each seed on exactly one worker, so
        // the derivation/firing counters — not just the model — are equal.
        let (_, seq) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, 1);
        let (_, par) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, 4);
        assert_eq!(seq.stats().derivations, par.stats().derivations);
        assert_eq!(seq.stats().firings, par.stats().firings);
        assert_eq!(seq.stats().rounds, par.stats().rounds);
        assert_eq!(seq.stats().pruned, par.stats().pruned);
    }

    #[test]
    fn parallel_zero_workers_means_available_parallelism() {
        // `workers: 0` resolves to the machine; whatever that is, the
        // model matches the sequential one.
        let (p, seq) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, 1);
        let (_, auto) = run_parallel(SHORTEST_PATH_SRC, Strategy::SemiNaive, 0);
        assert_eq!(seq.render(&p), auto.render(&p));
    }

    #[test]
    fn parallel_surfaces_cost_conflicts() {
        // Two rules derive p(a) at different costs in the same round; the
        // Definition 2.6 check must fire at whatever worker count, whether
        // the colliding pushes land in one shard or meet at the barrier.
        let src = r#"
            declare pred p/2 cost min_real.
            base(a).
            seed(X) :- base(X).
            p(X, 1) :- seed(X).
            p(X, 2) :- seed(X).
        "#;
        let p = parse_program(src).unwrap();
        for workers in [1usize, 2, 4] {
            let r = MonotonicEngine::with_options(
                &p,
                EvalOptions {
                    workers,
                    allow_unchecked: true,
                    ..Default::default()
                },
            )
            .evaluate(&Edb::new());
            assert!(
                matches!(r, Err(EvalError::CostConflict { .. })),
                "workers={workers}: {r:?}"
            );
        }
    }

    #[test]
    fn parallel_round_events_report_shards() {
        struct ParSpy {
            rounds: usize,
            workers: Vec<usize>,
            firings_via_shards: usize,
        }
        impl EventSink for ParSpy {
            fn parallel_round(
                &mut self,
                _round: usize,
                workers: usize,
                shard_sizes: &[usize],
                _merges: u64,
                _wait: u64,
            ) {
                self.rounds += 1;
                self.workers.push(workers);
                assert_eq!(shard_sizes.len(), workers);
                self.firings_via_shards += shard_sizes.iter().sum::<usize>();
            }
        }
        let p = parse_program(SHORTEST_PATH_SRC).unwrap();
        let mut spy = ParSpy {
            rounds: 0,
            workers: Vec::new(),
            firings_via_shards: 0,
        };
        let m = MonotonicEngine::with_options(
            &p,
            EvalOptions {
                workers: 3,
                ..Default::default()
            },
        )
        .evaluate_with_sink(&Edb::new(), &mut spy)
        .unwrap();
        assert!(spy.rounds > 0, "no parallel_round events fired");
        assert!(spy.workers.iter().all(|&w| w == 3));
        assert_eq!(spy.firings_via_shards as u64, m.stats().firings);
    }
}
