//! Span-based execution tracing with Chrome trace-event export.
//!
//! Where [`crate::profile`] aggregates counters (totals per rule, per
//! round), this module records a *timeline*: begin/end span events per
//! phase, component, round, and rule firing — and, under `--parallel`,
//! per-worker fire / barrier-wait / merge spans — plus allocator and
//! delta-size counter tracks sampled at round boundaries. The result
//! renders as Chrome trace-event JSON (`maglog-trace-v1`) loadable in
//! Perfetto or `chrome://tracing`, with one lane per worker thread.
//!
//! Three pieces:
//!
//! - [`Tracer`]: a cheaply-clonable, thread-safe handle over a bounded
//!   event buffer and an injectable [`Clock`]. Workers clone it; the cap
//!   plus an `events_dropped` footer count means tracing a 10⁵-round
//!   workload degrades instead of OOMing.
//! - [`SpanSink`]: an [`EventSink`] that converts evaluator events into
//!   spans, resolving interned ids against `&Program` once per name.
//! - [`validate_chrome_trace`]: the structural validator the tests and
//!   the `maglog trace-validate` subcommand share — per-lane B/E
//!   balance, per-lane monotone timestamps, named lanes, and the
//!   presence of the allocator counter track.
//!
//! Tracing is strictly opt-in: no evaluator path constructs a `Tracer`
//! unless `--trace` is given, and [`EventSink::worker_tracer`] defaults
//! to `None`, so the zero-cost-when-off property from the `EventSink`
//! layer extends to every hook point added here.

use crate::alloc;
use crate::eval::Strategy;
use crate::events::{Clock, EventSink, SystemClock};
use crate::jsonish::{self, json_escape, JsonValue};
use maglog_datalog::{Pred, Program};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Schema tag written into the trace footer.
pub const TRACE_SCHEMA: &str = "maglog-trace-v1";

/// Default event-buffer cap. At ~48 bytes per event this bounds the
/// buffer around 50 MB; past it events are counted in `events_dropped`
/// rather than stored.
pub const DEFAULT_EVENT_CAP: usize = 1_000_000;

/// Lane 0 is the orchestrating thread; parallel worker `w` is lane
/// `w + 1`.
pub const MAIN_LANE: u32 = 0;

/// Chrome trace-event phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ph {
    /// `"B"`: a duration span begins.
    Begin,
    /// `"E"`: the innermost open span on the lane ends.
    End,
    /// `"C"`: a counter sample.
    Counter,
}

impl Ph {
    fn as_str(self) -> &'static str {
        match self {
            Ph::Begin => "B",
            Ph::End => "E",
            Ph::Counter => "C",
        }
    }
}

/// An event name: either a static label or an index into the tracer's
/// intern table (rule text, component labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NameRef {
    Static(&'static str),
    Interned(u32),
}

/// One buffered event. Timestamps are clock nanoseconds; rendering
/// converts to the microseconds Chrome's `ts` field expects.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub lane: u32,
    pub ph: Ph,
    pub ts: u64,
    pub cat: &'static str,
    pub name: NameRef,
    /// `(series, value)` pairs: counter payloads, and optional numeric
    /// annotations on `B` events (round number, firing counts).
    pub args: Vec<(&'static str, u64)>,
}

/// A span with a resolved name and duration, as reported by
/// [`Tracer::top_spans`].
#[derive(Clone, Debug)]
pub struct SpanStat {
    pub name: String,
    pub lane: u32,
    pub nanos: u64,
}

struct Buffer {
    events: Vec<TraceEvent>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    dropped: u64,
    cap: usize,
}

struct Inner {
    clock: Box<dyn Clock + Send + Sync>,
    buf: Mutex<Buffer>,
}

/// Thread-safe handle over the bounded trace buffer. Clones share the
/// same buffer and clock, so the parallel orchestrator can hand one to
/// each worker lane.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.inner.buf.lock().unwrap();
        f.debug_struct("Tracer")
            .field("events", &buf.events.len())
            .field("dropped", &buf.dropped)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer over the wall clock with the default event cap.
    pub fn new() -> Tracer {
        Tracer::with_clock(Box::new(SystemClock::new()))
    }

    /// A tracer over an injected clock ([`crate::events::ManualClock`]
    /// makes golden tests deterministic).
    pub fn with_clock(clock: Box<dyn Clock + Send + Sync>) -> Tracer {
        Tracer::with_clock_and_cap(clock, DEFAULT_EVENT_CAP)
    }

    pub fn with_clock_and_cap(clock: Box<dyn Clock + Send + Sync>, cap: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                clock,
                buf: Mutex::new(Buffer {
                    events: Vec::new(),
                    names: Vec::new(),
                    name_ids: HashMap::new(),
                    dropped: 0,
                    cap,
                }),
            }),
        }
    }

    /// Current clock reading in nanoseconds.
    pub fn now(&self) -> u64 {
        self.inner.clock.now_nanos()
    }

    /// Intern `name`, returning a stable reference for repeated spans.
    pub fn intern(&self, name: &str) -> NameRef {
        let mut buf = self.inner.buf.lock().unwrap();
        if let Some(&id) = buf.name_ids.get(name) {
            return NameRef::Interned(id);
        }
        let id = buf.names.len() as u32;
        buf.names.push(name.to_string());
        buf.name_ids.insert(name.to_string(), id);
        NameRef::Interned(id)
    }

    /// Append an event at an explicit timestamp (used for spans measured
    /// on worker threads and reported retroactively at the barrier).
    pub fn push_at(
        &self,
        ts: u64,
        lane: u32,
        ph: Ph,
        cat: &'static str,
        name: NameRef,
        args: Vec<(&'static str, u64)>,
    ) {
        let mut buf = self.inner.buf.lock().unwrap();
        if buf.events.len() >= buf.cap {
            buf.dropped += 1;
            return;
        }
        buf.events.push(TraceEvent {
            lane,
            ph,
            ts,
            cat,
            name,
            args,
        });
    }

    /// Open a span on `lane` at the current clock reading.
    pub fn begin(&self, lane: u32, cat: &'static str, name: NameRef) {
        self.push_at(self.now(), lane, Ph::Begin, cat, name, Vec::new());
    }

    /// Open a span with numeric annotations.
    pub fn begin_args(
        &self,
        lane: u32,
        cat: &'static str,
        name: NameRef,
        args: Vec<(&'static str, u64)>,
    ) {
        self.push_at(self.now(), lane, Ph::Begin, cat, name, args);
    }

    /// Close the innermost open span on `lane`.
    pub fn end(&self, lane: u32, cat: &'static str, name: NameRef) {
        self.push_at(self.now(), lane, Ph::End, cat, name, Vec::new());
    }

    /// Record a counter sample on `lane` at the current clock reading.
    pub fn counter(&self, lane: u32, name: NameRef, args: Vec<(&'static str, u64)>) {
        self.push_at(self.now(), lane, Ph::Counter, "counter", name, args);
    }

    /// Record worker `w`'s round on its own lane: a `fire` span over
    /// `[fire_start, fire_end]` and a `barrier-wait` span from its last
    /// firing to `barrier_done` (when the orchestrator had collected
    /// every shard). Called by the parallel orchestrator in worker order
    /// so parallel traces are push-order deterministic.
    pub fn worker_round_spans(&self, worker: usize, fire: (u64, u64), barrier_done: u64) {
        let lane = worker as u32 + 1;
        let (start, end) = fire;
        self.push_at(start, lane, Ph::Begin, "worker", NameRef::Static("fire"), Vec::new());
        self.push_at(end, lane, Ph::End, "worker", NameRef::Static("fire"), Vec::new());
        let wait_end = barrier_done.max(end);
        self.push_at(
            end,
            lane,
            Ph::Begin,
            "worker",
            NameRef::Static("barrier-wait"),
            Vec::new(),
        );
        self.push_at(
            wait_end,
            lane,
            Ph::End,
            "worker",
            NameRef::Static("barrier-wait"),
            Vec::new(),
        );
    }

    /// Number of events currently buffered.
    pub fn events_recorded(&self) -> usize {
        self.inner.buf.lock().unwrap().events.len()
    }

    /// Number of events discarded after the buffer hit its cap.
    pub fn events_dropped(&self) -> u64 {
        self.inner.buf.lock().unwrap().dropped
    }

    fn resolve(names: &[String], name: NameRef) -> String {
        match name {
            NameRef::Static(s) => s.to_string(),
            NameRef::Interned(id) => names
                .get(id as usize)
                .cloned()
                .unwrap_or_else(|| format!("?name{id}")),
        }
    }

    /// The `k` widest completed spans (matched `B`/`E` pairs, any lane),
    /// widest first; ties broken by earlier start, then lane.
    pub fn top_spans(&self, k: usize) -> Vec<SpanStat> {
        let buf = self.inner.buf.lock().unwrap();
        let mut events: Vec<&TraceEvent> = buf.events.iter().collect();
        events.sort_by_key(|e| e.ts);
        let mut stacks: HashMap<u32, Vec<(NameRef, u64)>> = HashMap::new();
        let mut spans: Vec<SpanStat> = Vec::new();
        for e in events {
            match e.ph {
                Ph::Begin => stacks.entry(e.lane).or_default().push((e.name, e.ts)),
                Ph::End => {
                    if let Some((name, start)) = stacks.entry(e.lane).or_default().pop() {
                        spans.push(SpanStat {
                            name: Tracer::resolve(&buf.names, name),
                            lane: e.lane,
                            nanos: e.ts.saturating_sub(start),
                        });
                    }
                }
                Ph::Counter => {}
            }
        }
        spans.sort_by(|a, b| {
            b.nanos
                .cmp(&a.nanos)
                .then_with(|| a.lane.cmp(&b.lane))
                .then_with(|| a.name.cmp(&b.name))
        });
        spans.truncate(k);
        spans
    }

    /// Render the buffer as Chrome trace-event JSON (`maglog-trace-v1`).
    ///
    /// Events are stably sorted by timestamp (equal timestamps keep push
    /// order, which preserves nesting), `ts` is emitted in microseconds,
    /// every lane gets a `thread_name` meta event, and the footer
    /// records the schema, `program` label, and drop count. Spans still
    /// open at render time (an evaluation aborted by an error) are
    /// closed at the final timestamp so the document always balances.
    pub fn render_chrome_json(&self, program: &str) -> String {
        let buf = self.inner.buf.lock().unwrap();
        let mut order: Vec<usize> = (0..buf.events.len()).collect();
        order.sort_by_key(|&i| buf.events[i].ts);
        let mut lanes: Vec<u32> = buf.events.iter().map(|e| e.lane).collect();
        lanes.push(MAIN_LANE);
        lanes.sort_unstable();
        lanes.dedup();
        let max_ts = buf.events.iter().map(|e| e.ts).max().unwrap_or(0);
        let mut open: HashMap<u32, Vec<(&'static str, NameRef)>> = HashMap::new();

        let mut out = String::new();
        out.push_str("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"maglog\"}}");
        for &lane in &lanes {
            let label = if lane == MAIN_LANE {
                "main".to_string()
            } else {
                format!("worker {}", lane - 1)
            };
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&label)
            ));
        }
        let close = |out: &mut String, cat: &str, name: NameRef, lane: u32, ts: u64| {
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
                json_escape(&Tracer::resolve(&buf.names, name)),
                cat,
                lane,
                ts as f64 / 1000.0
            ));
        };
        for &i in &order {
            let e = &buf.events[i];
            let stack = open.entry(e.lane).or_default();
            match e.ph {
                Ph::Begin => stack.push((e.cat, e.name)),
                Ph::End => {
                    // An aborted evaluation can leave inner spans (round,
                    // component) open when an outer phase span closes;
                    // close the children first so the document nests.
                    if let Some(depth) = stack.iter().rposition(|&(_, n)| n == e.name) {
                        while stack.len() > depth + 1 {
                            let (cat, name) = stack.pop().unwrap();
                            close(&mut out, cat, name, e.lane, e.ts);
                        }
                        stack.pop();
                    }
                }
                Ph::Counter => {}
            }
            let name = Tracer::resolve(&buf.names, e.name);
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
                json_escape(&name),
                e.cat,
                e.ph.as_str(),
                e.lane,
                e.ts as f64 / 1000.0
            ));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push('}');
            }
            out.push('}');
        }
        for &lane in &lanes {
            let mut stack = open.remove(&lane).unwrap_or_default();
            while let Some((cat, name)) = stack.pop() {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
                    json_escape(&Tracer::resolve(&buf.names, name)),
                    cat,
                    lane,
                    max_ts as f64 / 1000.0
                ));
            }
        }
        out.push_str(&format!(
            "\n],\n\"otherData\": {{\"schema\": \"{TRACE_SCHEMA}\", \"program\": \"{}\", \"events_recorded\": {}, \"events_dropped\": {}}}\n}}\n",
            json_escape(program),
            buf.events.len(),
            buf.dropped
        ));
        out
    }
}

/// An [`EventSink`] that records evaluator events as spans in a
/// [`Tracer`]. Component and rule names are resolved against the
/// program once and interned; per-round heap and delta counters are
/// sampled at `round_end`.
pub struct SpanSink<'p> {
    program: &'p Program,
    tracer: Tracer,
    rule_names: HashMap<usize, NameRef>,
    open_components: Vec<NameRef>,
}

impl<'p> SpanSink<'p> {
    pub fn new(program: &'p Program, tracer: Tracer) -> SpanSink<'p> {
        SpanSink {
            program,
            tracer,
            rule_names: HashMap::new(),
            open_components: Vec::new(),
        }
    }

    /// The shared tracer handle (for rendering after evaluation).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn rule_name(&mut self, rule: usize) -> NameRef {
        if let Some(&name) = self.rule_names.get(&rule) {
            return name;
        }
        let text = self
            .program
            .rules
            .get(rule)
            .map(|r| self.program.display_rule(r))
            .unwrap_or_else(|| format!("rule {rule}"));
        let mut label = format!("r{rule} {text}");
        if label.chars().count() > 64 {
            label = label.chars().take(63).collect::<String>() + "…";
        }
        let name = self.tracer.intern(&label);
        self.rule_names.insert(rule, name);
        name
    }
}

impl EventSink for SpanSink<'_> {
    fn component_start(&mut self, component: usize, strategy: Strategy, cdb: &[Pred]) {
        let preds: Vec<String> = cdb.iter().map(|p| self.program.pred_name(*p)).collect();
        let label = format!(
            "component {component} [{}] {}",
            strategy.name(),
            preds.join(",")
        );
        let name = self.tracer.intern(&label);
        self.open_components.push(name);
        self.tracer.begin(MAIN_LANE, "component", name);
    }

    fn round_start(&mut self, round: usize, full: bool) {
        self.tracer.begin_args(
            MAIN_LANE,
            "round",
            NameRef::Static("round"),
            vec![("round", round as u64), ("full", full as u64)],
        );
    }

    fn rule_fire_start(&mut self, rule: usize) {
        let name = self.rule_name(rule);
        self.tracer.begin(MAIN_LANE, "rule", name);
    }

    fn rule_fire_end(&mut self, rule: usize) {
        let name = self.rule_name(rule);
        self.tracer.end(MAIN_LANE, "rule", name);
    }

    // Worker-side tallies replayed at the parallel barrier: the real
    // spans already live on the worker lanes, so don't synthesize
    // `count` zero-width main-lane spans.
    fn rule_firings(&mut self, _rule: usize, _count: u64) {}

    fn round_end(&mut self, _round: usize, derivations: usize, changed: usize) {
        self.tracer
            .end(MAIN_LANE, "round", NameRef::Static("round"));
        self.tracer.counter(
            MAIN_LANE,
            NameRef::Static("heap"),
            vec![
                ("live", alloc::current_bytes() as u64),
                ("peak", alloc::peak_bytes() as u64),
            ],
        );
        self.tracer.counter(
            MAIN_LANE,
            NameRef::Static("delta"),
            vec![("derived", derivations as u64), ("changed", changed as u64)],
        );
    }

    fn component_end(&mut self, _component: usize, _rounds: usize) {
        if let Some(name) = self.open_components.pop() {
            self.tracer.end(MAIN_LANE, "component", name);
        }
    }

    fn worker_tracer(&self) -> Option<Tracer> {
        Some(self.tracer.clone())
    }
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceCheck {
    pub events: usize,
    pub lanes: usize,
    pub dropped: u64,
    pub heap_samples: usize,
}

fn ev_str<'a>(e: &'a JsonValue, key: &str, i: usize) -> Result<&'a str, String> {
    e.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("event {i}: missing string field `{key}`"))
}

/// Structurally validate a `maglog-trace-v1` document: parseable JSON,
/// schema tag, per-lane balanced `B`/`E` with matching names (only
/// enforced when `events_dropped == 0`), per-lane monotone timestamps,
/// a `thread_name` meta event for every lane, and at least one `heap`
/// counter sample. Shared by the test suite and `maglog trace-validate`.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = jsonish::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let other = doc
        .get("otherData")
        .ok_or_else(|| "missing `otherData` footer".to_string())?;
    let schema = other
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "footer has no `schema`".to_string())?;
    if schema != TRACE_SCHEMA {
        return Err(format!("schema is `{schema}`, want `{TRACE_SCHEMA}`"));
    }
    let dropped = other
        .get("events_dropped")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| "footer has no `events_dropped`".to_string())? as u64;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;

    let mut lane_names: HashMap<i64, String> = HashMap::new();
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut check = TraceCheck {
        dropped,
        ..TraceCheck::default()
    };

    for (i, e) in events.iter().enumerate() {
        let ph = ev_str(e, "ph", i)?;
        let name = ev_str(e, "name", i)?.to_string();
        let tid = e.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as i64;
        if ph == "M" {
            if name == "thread_name" {
                let label = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event {i}: thread_name meta without a name"))?;
                lane_names.insert(tid, label.to_string());
            }
            continue;
        }
        check.events += 1;
        let ts = e
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `ts`"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: lane {tid} timestamp regresses ({ts} < {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        if !lane_names.contains_key(&tid) {
            return Err(format!("event {i}: lane {tid} has no thread_name meta event"));
        }
        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                match top {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: lane {tid} closes `{name}` but `{open}` is open"
                        ))
                    }
                    None if dropped == 0 => {
                        return Err(format!(
                            "event {i}: lane {tid} closes `{name}` with no open span"
                        ))
                    }
                    None => {}
                }
            }
            "C" => {
                if name == "heap" {
                    check.heap_samples += 1;
                }
            }
            "X" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    if dropped == 0 {
        for (tid, stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(format!("lane {tid}: span `{open}` never ends"));
            }
        }
    }
    if check.heap_samples == 0 {
        return Err("no `heap` counter samples (allocator track missing)".to_string());
    }
    check.lanes = lane_names.len();
    Ok(check)
}

/// Render a `maglog-trace-v1` document to collapsed-stack format — one
/// line per distinct span path with its summed *self* time in
/// nanoseconds, `lane;span;span… <ns>` — the text format flame-graph
/// tools (inferno, speedscope) load directly. Lanes become root frames
/// (`main`, `worker 0`, …) so a multi-worker trace folds into one graph
/// without timestamp collisions. Counter and meta events carry no
/// duration and are skipped.
///
/// The document is checked with [`validate_chrome_trace`] first, so
/// `trace-flame` and `trace-validate` accept exactly the same inputs.
pub fn render_collapsed_stacks(text: &str) -> Result<String, String> {
    validate_chrome_trace(text)?;
    let doc = jsonish::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;

    // Frame names join with `;`, so a `;` inside a name would split the
    // path; the collapsed format has no escape, the convention is to
    // substitute.
    let clean = |name: &str| name.replace(';', ",");

    struct Frame {
        name: String,
        start: f64,
        /// Microseconds consumed by already-closed children.
        child: f64,
    }
    let mut lane_names: HashMap<i64, String> = HashMap::new();
    let mut stacks: HashMap<i64, Vec<Frame>> = HashMap::new();
    let mut self_us: BTreeMap<String, f64> = BTreeMap::new();

    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let name = e.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let tid = e.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as i64;
        let ts = e.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
        match ph {
            "M" if name == "thread_name" => {
                if let Some(label) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                {
                    lane_names.insert(tid, clean(label));
                }
            }
            "B" => stacks.entry(tid).or_default().push(Frame {
                name: clean(name),
                start: ts,
                child: 0.0,
            }),
            "E" => {
                // The validator already guaranteed balance and name
                // agreement; an unmatched E can only follow drops.
                let stack = stacks.entry(tid).or_default();
                let Some(frame) = stack.pop() else { continue };
                let dur = (ts - frame.start).max(0.0);
                if let Some(parent) = stack.last_mut() {
                    parent.child += dur;
                }
                let mut path = lane_names
                    .get(&tid)
                    .cloned()
                    .unwrap_or_else(|| format!("lane {tid}"));
                for f in stack.iter() {
                    path.push(';');
                    path.push_str(&f.name);
                }
                path.push(';');
                path.push_str(&frame.name);
                *self_us.entry(path).or_insert(0.0) += (dur - frame.child).max(0.0);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    for (path, us) in &self_us {
        // `ts` is µs at nanosecond precision (3 decimals), so this
        // round-trips the original integer nanoseconds exactly.
        out.push_str(&format!("{path} {}\n", (us * 1000.0).round() as u64));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ManualClock;

    fn manual_tracer(step: u64) -> Tracer {
        Tracer::with_clock(Box::new(ManualClock::with_step(step)))
    }

    #[test]
    fn spans_render_and_validate() {
        let t = manual_tracer(1);
        t.begin(MAIN_LANE, "phase", NameRef::Static("eval"));
        let name = t.intern("component 0 [seminaive] p");
        t.begin(MAIN_LANE, "component", name);
        t.counter(
            MAIN_LANE,
            NameRef::Static("heap"),
            vec![("live", 0), ("peak", 0)],
        );
        t.end(MAIN_LANE, "component", name);
        t.end(MAIN_LANE, "phase", NameRef::Static("eval"));
        let json = t.render_chrome_json("unit");
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.events, 5);
        assert_eq!(check.lanes, 1);
        assert_eq!(check.dropped, 0);
        assert_eq!(check.heap_samples, 1);
    }

    #[test]
    fn worker_spans_get_their_own_named_lane() {
        let t = manual_tracer(1);
        t.counter(
            MAIN_LANE,
            NameRef::Static("heap"),
            vec![("live", 0), ("peak", 0)],
        );
        t.worker_round_spans(0, (10, 14), 20);
        t.worker_round_spans(1, (10, 20), 20);
        let json = t.render_chrome_json("unit");
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.lanes, 3);
        assert!(json.contains("\"worker 0\""));
        assert!(json.contains("\"worker 1\""));
        assert!(json.contains("\"barrier-wait\""));
    }

    /// A hand-crafted document: one named `main` lane plus the given
    /// event objects (the renderer itself can no longer produce
    /// malformed traces, so the rejection paths get raw JSON).
    fn doc(events: &str) -> String {
        format!(
            "{{\"traceEvents\":[{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"main\"}}}},{events}],\
             \"otherData\":{{\"schema\":\"{TRACE_SCHEMA}\",\"events_dropped\":0}}}}"
        )
    }

    #[test]
    fn unbalanced_or_regressing_traces_are_rejected() {
        let heap = "{\"name\":\"heap\",\"ph\":\"C\",\"tid\":0,\"ts\":0}";

        // A span that never ends.
        let err = validate_chrome_trace(&doc(&format!(
            "{heap},{{\"name\":\"eval\",\"ph\":\"B\",\"tid\":0,\"ts\":1}}"
        )))
        .unwrap_err();
        assert!(err.contains("never ends"), "{err}");

        // A close with no matching open.
        let err = validate_chrome_trace(&doc(&format!(
            "{heap},{{\"name\":\"eval\",\"ph\":\"E\",\"tid\":0,\"ts\":1}}"
        )))
        .unwrap_err();
        assert!(err.contains("no open span"), "{err}");

        // A close whose name mismatches the open span.
        let err = validate_chrome_trace(&doc(&format!(
            "{heap},{{\"name\":\"eval\",\"ph\":\"B\",\"tid\":0,\"ts\":1}},\
             {{\"name\":\"parse\",\"ph\":\"E\",\"tid\":0,\"ts\":2}}"
        )))
        .unwrap_err();
        assert!(err.contains("closes"), "{err}");

        // A regressing timestamp on one lane.
        let err = validate_chrome_trace(&doc(&format!(
            "{{\"name\":\"eval\",\"ph\":\"B\",\"tid\":0,\"ts\":5}},{heap},\
             {{\"name\":\"eval\",\"ph\":\"E\",\"tid\":0,\"ts\":9}}"
        )))
        .unwrap_err();
        assert!(err.contains("regresses"), "{err}");

        // A lane no meta event names.
        let err = validate_chrome_trace(&doc(&format!(
            "{heap},{{\"name\":\"fire\",\"ph\":\"B\",\"tid\":7,\"ts\":1}},\
             {{\"name\":\"fire\",\"ph\":\"E\",\"tid\":7,\"ts\":2}}"
        )))
        .unwrap_err();
        assert!(err.contains("thread_name"), "{err}");
    }

    #[test]
    fn collapsed_stacks_sum_self_time_per_path() {
        let t = manual_tracer(1);
        // Explicit timestamps; the manual clock is never consulted.
        t.push_at(0, MAIN_LANE, Ph::Counter, "counter", NameRef::Static("heap"), vec![("live", 0), ("peak", 0)]);
        t.push_at(0, MAIN_LANE, Ph::Begin, "phase", NameRef::Static("eval"), Vec::new());
        t.push_at(100, MAIN_LANE, Ph::Begin, "round", NameRef::Static("round"), Vec::new());
        t.push_at(400, MAIN_LANE, Ph::End, "round", NameRef::Static("round"), Vec::new());
        t.push_at(400, MAIN_LANE, Ph::Begin, "round", NameRef::Static("round"), Vec::new());
        t.push_at(900, MAIN_LANE, Ph::End, "round", NameRef::Static("round"), Vec::new());
        t.push_at(1000, MAIN_LANE, Ph::End, "phase", NameRef::Static("eval"), Vec::new());
        // Worker lane with a `;` in an interned name: substituted, not
        // allowed to split the frame path.
        let merge = t.intern("merge;shard");
        t.push_at(200, 1, Ph::Begin, "worker", merge, Vec::new());
        t.push_at(500, 1, Ph::End, "worker", merge, Vec::new());

        let json = t.render_chrome_json("p");
        let collapsed = render_collapsed_stacks(&json).unwrap();
        // eval self = 1000 − (300 + 500) child ns; the two same-named
        // round spans sum into one line.
        assert_eq!(
            collapsed,
            "main;eval 200\n\
             main;eval;round 800\n\
             worker 0;merge,shard 300\n",
        );
    }

    #[test]
    fn collapsed_stacks_reject_what_the_validator_rejects() {
        let err = render_collapsed_stacks("{\"traceEvents\": []}").unwrap_err();
        assert!(err.contains("otherData"), "{err}");
    }

    #[test]
    fn render_closes_spans_left_open_by_an_aborted_run() {
        let t = manual_tracer(1);
        t.begin(MAIN_LANE, "phase", NameRef::Static("eval"));
        t.begin(MAIN_LANE, "round", NameRef::Static("round"));
        t.counter(
            MAIN_LANE,
            NameRef::Static("heap"),
            vec![("live", 0), ("peak", 0)],
        );
        // No ends: the evaluation error-ed out mid-round. The rendered
        // document still balances (both spans closed at the last ts).
        let json = t.render_chrome_json("unit");
        let check = validate_chrome_trace(&json).expect("auto-closed trace is valid");
        assert_eq!(check.events, 5);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let t = manual_tracer(1);
        let json = t
            .render_chrome_json("unit")
            .replace(TRACE_SCHEMA, "maglog-trace-v0");
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn cap_drops_and_reports_instead_of_growing() {
        let t = Tracer::with_clock_and_cap(Box::new(ManualClock::with_step(1)), 4);
        for _ in 0..10 {
            t.begin(MAIN_LANE, "round", NameRef::Static("round"));
            t.end(MAIN_LANE, "round", NameRef::Static("round"));
        }
        assert_eq!(t.events_recorded(), 4);
        assert_eq!(t.events_dropped(), 16);
        let json = t.render_chrome_json("unit");
        assert!(json.contains("\"events_dropped\": 16"));
        // Balance is not enforced once events were dropped, but the heap
        // track requirement still applies.
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("heap"), "{err}");
    }

    #[test]
    fn top_spans_ranks_by_width() {
        let t = manual_tracer(0);
        t.push_at(0, MAIN_LANE, Ph::Begin, "phase", NameRef::Static("eval"), vec![]);
        t.push_at(2, MAIN_LANE, Ph::Begin, "round", NameRef::Static("round"), vec![]);
        t.push_at(5, MAIN_LANE, Ph::End, "round", NameRef::Static("round"), vec![]);
        t.push_at(10, MAIN_LANE, Ph::End, "phase", NameRef::Static("eval"), vec![]);
        let top = t.top_spans(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "eval");
        assert_eq!(top[0].nanos, 10);
        assert_eq!(top[1].name, "round");
        assert_eq!(top[1].nanos, 3);
    }
}
