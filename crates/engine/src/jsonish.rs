//! Hand-rolled JSON, shared by every schema the workspace emits
//! (`maglog-profile-v1`, `maglog-explain-v1`, `maglog-bench-v2`).
//!
//! The workspace has no serde by design; before this module each emitter
//! carried its own copy of the escaping and number-formatting helpers.
//! They live here now, together with a small ordered value tree
//! ([`JsonValue`]) whose renderer and parser round-trip — the bench
//! harness builds its documents as trees and reads baselines (v1 or v2)
//! back through [`parse`].

use std::fmt::Write as _;

/// Escape `s` for a JSON string literal (no surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// Render a finite float. Integral values keep a trailing `.0` so the
/// column stays visibly a float across a document.
pub fn json_num(x: f64) -> String {
    assert!(x.is_finite(), "non-finite value has no JSON rendering");
    if x == x.trunc() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Render any finite `f64` in Rust's shortest-round-trip form: the
/// output parses back to the identical bit pattern (except `-0.0`, which
/// renders as `-0` and reads back as `-0.0`). This is the formatting the
/// OpenMetrics exposition and the bench percentile columns share —
/// unlike [`json_num`] it does not force a `.0` on integral values, so
/// `2` stays `2`.
pub fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "non-finite value has no exposition rendering");
    format!("{x}")
}

/// An ordered JSON value: objects keep their fields in insertion order,
/// so rendered documents are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An integer-rendered number (no `.0`).
    pub fn int(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(x) => {
                // Integral values in the tree render as integers; emitters
                // that want a visible float column go through `json_num`.
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            JsonValue::Str(s) => out.push_str(&json_str(s)),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, level + 1);
                    item.render_into(out, level + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, level);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, level + 1);
                    out.push_str(&json_str(k));
                    out.push_str(": ");
                    v.render_into(out, level + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                indent(out, level);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Parse a JSON document. Strict enough for the schemas we emit
/// ourselves; errors carry a byte offset.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected content at byte {}", *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not produced by our emitters.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Consume one multi-byte UTF-8 character. Decode from a
                // four-byte window, not the whole remaining input — the
                // full-slice validation this used to do made parsing a
                // megabyte-scale trace dump quadratic.
                let end = (*pos + 4).min(bytes.len());
                let window = &bytes[*pos..end];
                let c = match std::str::from_utf8(window) {
                    Ok(s) => s.chars().next(),
                    // A complete char followed by the truncated start of
                    // the next one still decodes from the valid prefix.
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()])
                            .unwrap()
                            .chars()
                            .next()
                    }
                    Err(_) => None,
                };
                let c = c.ok_or_else(|| format!("invalid UTF-8 at byte {}", *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_keeps_float_column_visible() {
        assert_eq!(json_num(2.0), "2.0");
        assert_eq!(json_num(0.125), "0.125");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn num_rejects_non_finite() {
        json_num(f64::NAN);
    }

    #[test]
    fn fmt_f64_round_trips_bit_exactly() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            2.0,
            0.1 + 0.2, // the classic non-representable sum
            0.125,
            1e-9,
            123456789e-9,
            1e300,
            -1e300,
            f64::MIN_POSITIVE,          // smallest normal
            f64::MIN_POSITIVE / 4.0,    // subnormal
            f64::MAX,
            u64::MAX as f64,
            std::f64::consts::PI,
        ];
        for x in cases {
            let text = fmt_f64(x);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {text}");
        }
    }

    #[test]
    fn fmt_f64_parses_as_json_number() {
        // Exposition values are also embedded in JSON documents; the
        // shortest form must stay inside JSON's number grammar.
        for x in [0.5, 1e300, 3.125e-9, -42.0] {
            let text = format!("[{}]", fmt_f64(x));
            let v = parse(&text).unwrap();
            assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(x));
        }
    }

    #[test]
    fn tree_round_trips_through_parse() {
        let doc = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str("maglog-bench-v2")),
            ("ok".into(), JsonValue::Bool(true)),
            ("n".into(), JsonValue::int(42)),
            ("x".into(), JsonValue::Num(0.5)),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::str("a\nb"), JsonValue::Null]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_accepts_hand_written_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "A"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}
