#![cfg(feature = "proptest")]
//! Property tests for the parser: generated programs round-trip through
//! printing, and arbitrary input never panics the lexer/parser.

use maglog_datalog::parse_program;
use proptest::prelude::*;

// ---- Never panic ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse_program(&src); // Result either way; no panic
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("q(".to_string()),
                Just("X".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(":-".to_string()),
                Just("=r".to_string()),
                Just("=".to_string()),
                Just("min".to_string()),
                Just(":".to_string()),
                Just("declare".to_string()),
                Just("pred".to_string()),
                Just("3".to_string()),
                Just("+".to_string()),
                Just("!".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
            ],
            0..30,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_program(&src);
    }
}

// ---- Generated well-formed programs round-trip ----

#[derive(Debug, Clone)]
struct GenProgram {
    source: String,
}

fn ident(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// Generate a random positive program: `n_preds` predicates with small
/// arities, facts over a small constant pool, and rules whose body atoms
/// chain variables so every rule is range-restricted.
fn gen_program() -> impl Strategy<Value = GenProgram> {
    (
        2usize..5,                                        // predicates
        prop::collection::vec((0usize..4, 0usize..4, 0usize..4), 1..8), // facts
        prop::collection::vec((0usize..4, 0usize..4, 0usize..3), 0..6), // rules
    )
        .prop_map(|(n_preds, facts, rules)| {
            use std::fmt::Write;
            let mut src = String::new();
            let pred = |i: usize| ident("p", i % n_preds);
            for (f, a, b) in &facts {
                let _ = writeln!(src, "{}({}, {}).", pred(*f), ident("c", *a), ident("c", *b));
            }
            for (h, b1, b2) in &rules {
                // head(X, Y) :- b1(X, Z), b2(Z, Y).
                let _ = writeln!(
                    src,
                    "{}(X, Y) :- {}(X, Z), {}(Z, Y).",
                    pred(*h),
                    pred(*b1),
                    pred(*b2 % n_preds)
                );
            }
            GenProgram { source: src }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn generated_programs_round_trip(gp in gen_program()) {
        let p1 = parse_program(&gp.source).expect("generated program parses");
        let printed = p1.to_source();
        let p2 = parse_program(&printed).expect("printed program re-parses");
        prop_assert_eq!(p1.rules.len(), p2.rules.len());
        prop_assert_eq!(p1.facts.len(), p2.facts.len());
        // Printing is a fixpoint after one round trip.
        prop_assert_eq!(printed, p2.to_source());
    }

    #[test]
    fn component_count_is_stable_under_round_trip(gp in gen_program()) {
        let p1 = parse_program(&gp.source).unwrap();
        let p2 = parse_program(&p1.to_source()).unwrap();
        prop_assert_eq!(
            maglog_datalog::graph::components(&p1).len(),
            maglog_datalog::graph::components(&p2).len()
        );
    }
}

// ---- Aggregate-bearing sources round-trip ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn aggregate_programs_round_trip(
        func in prop_oneof![
            Just("min"), Just("max"), Just("sum"), Just("count"),
            Just("avg"), Just("or")
        ],
        eq in prop_oneof![Just("="), Just("=r")],
        domain in prop_oneof![
            Just("min_real"), Just("max_real"), Just("nonneg_real"), Just("bool_or")
        ],
    ) {
        // `=` aggregates need their grouping variable limited elsewhere.
        let guard = if eq == "=" { "g(X), " } else { "" };
        let src = format!(
            "declare pred q/3 cost {domain}.\n\
             declare pred h/2 cost {domain}.\n\
             h(X, C) :- {guard}C {eq} {func} D : q(X, Y, D).\n"
        );
        let p1 = parse_program(&src).expect("aggregate program parses");
        let p2 = parse_program(&p1.to_source()).expect("printed program re-parses");
        prop_assert_eq!(p1.to_source(), p2.to_source());
    }
}
