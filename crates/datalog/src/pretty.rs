//! Pretty-printing of programs back to the concrete syntax.
//!
//! Because names live in the program's symbol table, printing goes through
//! wrapper values created by [`Program::display_rule`] and friends rather
//! than bare `Display` impls.

use crate::ast::*;
use std::fmt;

impl Program {
    pub fn display_term(&self, t: &Term) -> String {
        match t {
            Term::Var(v) => self.var_name(*v),
            Term::Const(c) => self.display_const(c),
        }
    }

    pub fn display_const(&self, c: &Const) -> String {
        match c {
            Const::Sym(s) => self.symbols.name(*s),
            Const::Num(n) => n.to_string(),
        }
    }

    pub fn display_atom(&self, a: &Atom) -> String {
        if a.args.is_empty() {
            return self.pred_name(a.pred);
        }
        let args: Vec<String> = a.args.iter().map(|t| self.display_term(t)).collect();
        format!("{}({})", self.pred_name(a.pred), args.join(", "))
    }

    pub fn display_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Term(t) => self.display_term(t),
            Expr::Neg(inner) => format!("-({})", self.display_expr(inner)),
            Expr::Bin(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Min => {
                        return format!(
                            "min({}, {})",
                            self.display_expr(l),
                            self.display_expr(r)
                        )
                    }
                    BinOp::Max => {
                        return format!(
                            "max({}, {})",
                            self.display_expr(l),
                            self.display_expr(r)
                        )
                    }
                };
                format!(
                    "({} {} {})",
                    self.display_expr(l),
                    sym,
                    self.display_expr(r)
                )
            }
        }
    }

    pub fn display_literal(&self, lit: &Literal) -> String {
        match lit {
            Literal::Pos(a) => self.display_atom(a),
            Literal::Neg(a) => format!("! {}", self.display_atom(a)),
            Literal::Builtin(b) => {
                let op = match b.op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                format!(
                    "{} {} {}",
                    self.display_expr(&b.lhs),
                    op,
                    self.display_expr(&b.rhs)
                )
            }
            Literal::Agg(agg) => {
                let eq = match agg.eq {
                    AggEq::Total => "=",
                    AggEq::Restricted => "=r",
                };
                let mvar = agg
                    .multiset_var
                    .map(|v| format!(" {}", self.var_name(v)))
                    .unwrap_or_default();
                let body = if agg.conjuncts.len() == 1 {
                    self.display_atom(&agg.conjuncts[0])
                } else {
                    let parts: Vec<String> = agg
                        .conjuncts
                        .iter()
                        .map(|a| self.display_atom(a))
                        .collect();
                    format!("[{}]", parts.join(", "))
                };
                format!(
                    "{} {} {}{} : {}",
                    self.display_term(&agg.result),
                    eq,
                    agg.func.name(),
                    mvar,
                    body
                )
            }
        }
    }

    pub fn display_rule(&self, rule: &Rule) -> String {
        if rule.body.is_empty() {
            return format!("{}.", self.display_atom(&rule.head));
        }
        let body: Vec<String> = rule.body.iter().map(|l| self.display_literal(l)).collect();
        format!("{} :- {}.", self.display_atom(&rule.head), body.join(", "))
    }

    pub fn display_constraint(&self, c: &Constraint) -> String {
        let body: Vec<String> = c.body.iter().map(|l| self.display_literal(l)).collect();
        format!("constraint :- {}.", body.join(", "))
    }

    /// Render the whole program (declarations, rules, constraints, facts).
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        let mut decls: Vec<&PredDecl> = self.decls.values().collect();
        decls.sort_by_key(|d| d.pred.0);
        for d in decls {
            let _ = write!(out, "declare pred {}/{}", self.pred_name(d.pred), d.arity);
            if let Some(cost) = d.cost {
                let _ = write!(out, " cost {}", cost.domain.name());
                if cost.has_default {
                    let _ = write!(out, " default");
                }
            }
            let _ = writeln!(out, ".");
        }
        for f in &self.facts {
            let _ = writeln!(out, "{}.", self.display_atom(f));
        }
        for r in &self.rules {
            let _ = writeln!(out, "{}", self.display_rule(r));
        }
        for c in &self.constraints {
            let _ = writeln!(out, "{}", self.display_constraint(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    /// Parsing the printed source must yield the same structure
    /// (round-trip property, checked on all the paper's programs).
    fn round_trips(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_source();
        let p2 = parse_program(&printed).unwrap_or_else(|e| {
            panic!("re-parse failed: {e}\nsource was:\n{printed}")
        });
        assert_eq!(p1.rules.len(), p2.rules.len());
        assert_eq!(p1.constraints.len(), p2.constraints.len());
        assert_eq!(p1.facts.len(), p2.facts.len());
        assert_eq!(p1.to_source(), p2.to_source(), "printing is a fixpoint");
    }

    #[test]
    fn shortest_path_round_trips() {
        round_trips(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            arc(a, b, 1).
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        );
    }

    #[test]
    fn circuit_round_trips() {
        round_trips(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            constraint :- gate(G, or), gate(G, and).
            "#,
        );
    }

    #[test]
    fn party_round_trips() {
        round_trips(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        );
    }

    #[test]
    fn negation_and_arithmetic_round_trip() {
        round_trips(
            r#"
            p(X, C) :- q(X, A, B), C = (A + B) * 2 - 1, ! r(X).
            "#,
        );
    }

    #[test]
    fn min_max_functions_round_trip() {
        round_trips(
            r#"
            declare pred link/3 cost max_real.
            declare pred w/3 cost max_real.
            declare pred wpath/4 cost max_real.
            wpath(X, Z, Y, C) :- w(X, Z, C1), link(Z, Y, C2), C = min(C1, C2).
            p(X, C) :- q(X, A, B), C = max(A, min(B, 3)) + 1.
            "#,
        );
    }
}
