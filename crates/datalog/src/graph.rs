//! Predicate dependency graph, strongly connected components, and the
//! componentwise CDB/LDB decomposition of Section 2.2.
//!
//! A *program component* is the set of rules for a set of mutually recursive
//! predicates. For a component `P`, a predicate is **CDB** ("current
//! component database") if it heads a rule of `P`, and **LDB** ("lower
//! component database") if it appears only in bodies. We compute SCCs of
//! the predicate dependency graph with an iterative Tarjan and emit the
//! components in dependency (topological) order, lowest first — exactly the
//! order the iterated minimal-model construction of Section 6.3 consumes
//! them in.

use crate::ast::{Literal, Pred, Program};
use std::collections::{BTreeSet, HashMap, HashSet};

/// How a body predicate is referenced by a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Through a positive subgoal.
    Positive,
    /// Through a negative subgoal.
    Negative,
    /// Inside an aggregate subgoal.
    Aggregate,
}

/// The predicate dependency graph of a program.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// head → set of (body pred, kind).
    pub edges: HashMap<Pred, HashSet<(Pred, EdgeKind)>>,
    /// Every predicate mentioned.
    pub preds: BTreeSet<Pred>,
}

impl DepGraph {
    pub fn build(program: &Program) -> Self {
        let mut g = DepGraph {
            preds: program.all_preds(),
            ..Default::default()
        };
        for rule in &program.rules {
            let entry = g.edges.entry(rule.head.pred).or_default();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        entry.insert((a.pred, EdgeKind::Positive));
                    }
                    Literal::Neg(a) => {
                        entry.insert((a.pred, EdgeKind::Negative));
                    }
                    Literal::Agg(agg) => {
                        for a in &agg.conjuncts {
                            entry.insert((a.pred, EdgeKind::Aggregate));
                        }
                    }
                    Literal::Builtin(_) => {}
                }
            }
        }
        g
    }

    fn successors(&self, p: Pred) -> impl Iterator<Item = Pred> + '_ {
        self.edges
            .get(&p)
            .into_iter()
            .flat_map(|s| s.iter().map(|(q, _)| *q))
    }
}

/// One strongly connected component of the dependency graph, with the rules
/// whose heads belong to it.
#[derive(Debug, Clone)]
pub struct Component {
    /// The mutually recursive predicates (CDB of this component).
    pub preds: BTreeSet<Pred>,
    /// Indices into `program.rules` of the rules defining those predicates.
    pub rule_indices: Vec<usize>,
    /// Does some rule of the component reference a component predicate
    /// inside an aggregate subgoal (recursion through aggregation)?
    pub recursive_aggregation: bool,
    /// Does some rule of the component negate a component predicate
    /// (recursion through negation)?
    pub recursive_negation: bool,
}

impl Component {
    /// LDB predicates of this component: referenced by its rules but not
    /// defined in it.
    pub fn ldb_preds(&self, program: &Program) -> BTreeSet<Pred> {
        let mut out = BTreeSet::new();
        for &i in &self.rule_indices {
            for lit in &program.rules[i].body {
                match lit {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        if !self.preds.contains(&a.pred) {
                            out.insert(a.pred);
                        }
                    }
                    Literal::Agg(agg) => {
                        for a in &agg.conjuncts {
                            if !self.preds.contains(&a.pred) {
                                out.insert(a.pred);
                            }
                        }
                    }
                    Literal::Builtin(_) => {}
                }
            }
        }
        out
    }
}

/// Compute the strongly connected components of `program`'s dependency
/// graph in topological order (dependencies first). Predicates with no
/// defining rules (pure EDB) form no component.
pub fn components(program: &Program) -> Vec<Component> {
    let graph = DepGraph::build(program);
    let sccs = tarjan_sccs(&graph);

    let mut out = Vec::new();
    for scc in sccs {
        let preds: BTreeSet<Pred> = scc.into_iter().collect();
        let rule_indices: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| preds.contains(&r.head.pred))
            .map(|(i, _)| i)
            .collect();
        if rule_indices.is_empty() {
            continue; // pure EDB predicate
        }
        let mut recursive_aggregation = false;
        let mut recursive_negation = false;
        for &i in &rule_indices {
            for lit in &program.rules[i].body {
                match lit {
                    Literal::Neg(a) if preds.contains(&a.pred) => recursive_negation = true,
                    Literal::Agg(agg)
                        if agg.conjuncts.iter().any(|a| preds.contains(&a.pred)) => {
                            recursive_aggregation = true;
                        }
                    _ => {}
                }
            }
        }
        out.push(Component {
            preds,
            rule_indices,
            recursive_aggregation,
            recursive_negation,
        });
    }
    out
}

/// Iterative Tarjan SCC. Returns components in reverse topological order of
/// the successor relation; since our edges point head → body (a component
/// *depends on* its successors), Tarjan's natural output order (callees
/// first) is exactly dependencies-first, which is what we want.
fn tarjan_sccs(graph: &DepGraph) -> Vec<Vec<Pred>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }

    let mut state: HashMap<Pred, NodeState> = HashMap::new();
    let mut stack: Vec<Pred> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<Pred>> = Vec::new();

    // Explicit DFS stack: (node, successor iterator position).
    for &root in &graph.preds {
        if state.contains_key(&root) {
            continue;
        }
        let mut call_stack: Vec<(Pred, Vec<Pred>, usize)> = Vec::new();
        let succs: Vec<Pred> = graph.successors(root).collect();
        state.insert(
            root,
            NodeState {
                index: next_index,
                lowlink: next_index,
                on_stack: true,
            },
        );
        next_index += 1;
        stack.push(root);
        call_stack.push((root, succs, 0));

        while let Some((node, succs, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < succs.len() {
                let w = succs[i];
                i += 1;
                match state.get(&w) {
                    None => {
                        // Descend into w.
                        let wsuccs: Vec<Pred> = graph.successors(w).collect();
                        state.insert(
                            w,
                            NodeState {
                                index: next_index,
                                lowlink: next_index,
                                on_stack: true,
                            },
                        );
                        next_index += 1;
                        stack.push(w);
                        call_stack.push((node, succs, i));
                        call_stack.push((w, wsuccs, 0));
                        descended = true;
                        break;
                    }
                    Some(ws) if ws.on_stack => {
                        let wi = ws.index;
                        let ns = state.get_mut(&node).expect("visited");
                        ns.lowlink = ns.lowlink.min(wi);
                    }
                    Some(_) => {}
                }
            }
            if descended {
                continue;
            }
            // Node finished: pop SCC if root, propagate lowlink to parent.
            let ns = state[&node];
            if ns.lowlink == ns.index {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack invariant");
                    state.get_mut(&w).expect("visited").on_stack = false;
                    scc.push(w);
                    if w == node {
                        break;
                    }
                }
                sccs.push(scc);
            }
            if let Some((parent, _, _)) = call_stack.last() {
                let low = state[&node].lowlink;
                let ps = state.get_mut(parent).expect("visited");
                ps.lowlink = ps.lowlink.min(low);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn shortest_path_component_structure() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 1, "path and s are mutually recursive");
        let c = &comps[0];
        assert_eq!(c.preds.len(), 2);
        assert!(c.recursive_aggregation);
        assert!(!c.recursive_negation);
        let ldb = c.ldb_preds(&p);
        assert_eq!(ldb.len(), 1);
        assert!(ldb.contains(&p.find_pred("arc").unwrap()));
    }

    #[test]
    fn stratified_program_yields_ordered_components() {
        let p = parse_program(
            r#"
            a(X) :- e(X).
            b(X) :- a(X).
            c(X) :- b(X), a(X).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 3);
        let names: Vec<String> = comps
            .iter()
            .map(|c| p.pred_name(*c.preds.iter().next().unwrap()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c"], "dependencies come first");
    }

    #[test]
    fn mutual_recursion_collapses_into_one_component() {
        let p = parse_program(
            r#"
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].preds.len(), 2);
        assert_eq!(comps[0].rule_indices.len(), 3);
    }

    #[test]
    fn negation_within_component_is_flagged() {
        let p = parse_program(
            r#"
            win(X) :- move(X, Y), ! win(Y).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].recursive_negation);
    }

    #[test]
    fn aggregate_stratified_program_has_no_recursive_aggregation() {
        let p = parse_program(
            r#"
            declare pred record/3 cost max_real.
            declare pred s_avg/2 cost max_real.
            s_avg(S, G) :- G =r avg G2 : record(S, C, G2).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 1);
        assert!(!comps[0].recursive_aggregation);
    }

    #[test]
    fn company_control_is_one_component() {
        let p = parse_program(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].preds.len(), 3); // cv, m, c
        assert!(comps[0].recursive_aggregation);
    }

    #[test]
    fn diamond_dependencies_topologically_ordered() {
        let p = parse_program(
            r#"
            top(X) :- left(X), right(X).
            left(X) :- base(X).
            right(X) :- base(X).
            base(X) :- e(X).
            "#,
        )
        .unwrap();
        let comps = components(&p);
        assert_eq!(comps.len(), 4);
        let pos = |name: &str| {
            comps
                .iter()
                .position(|c| c.preds.contains(&p.find_pred(name).unwrap()))
                .unwrap()
        };
        assert!(pos("base") < pos("left"));
        assert!(pos("base") < pos("right"));
        assert!(pos("left") < pos("top"));
        assert!(pos("right") < pos("top"));
    }
}
