//! Hand-written lexer for the maglog rule language.

use crate::error::{Loc, ParseError};
use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Lowercase-initial identifier (constant symbol, predicate name,
    /// keyword, aggregate/domain name).
    Ident(String),
    /// Uppercase- or `_`-initial identifier: a variable.
    UpIdent(String),
    /// A numeric literal.
    Num(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    /// `:-`
    Turnstile,
    /// `=`
    Eq,
    /// `=r`
    EqR,
    /// `!=`
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    /// `!` (negation)
    Bang,
    /// `/` used in `pred/arity` shares `Slash`.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::UpIdent(s) => write!(f, "'{s}'"),
            Tok::Num(n) => write!(f, "'{n}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::Comma => write!(f, "','"),
            Tok::Dot => write!(f, "'.'"),
            Tok::Colon => write!(f, "':'"),
            Tok::Turnstile => write!(f, "':-'"),
            Tok::Eq => write!(f, "'='"),
            Tok::EqR => write!(f, "'=r'"),
            Tok::Ne => write!(f, "'!='"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Le => write!(f, "'<='"),
            Tok::Gt => write!(f, "'>'"),
            Tok::Ge => write!(f, "'>='"),
            Tok::Plus => write!(f, "'+'"),
            Tok::Minus => write!(f, "'-'"),
            Tok::Star => write!(f, "'*'"),
            Tok::Slash => write!(f, "'/'"),
            Tok::Bang => write!(f, "'!'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source location and byte span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub loc: Loc,
    pub span: Span,
}

/// Tokenize `src`, producing a vector ending with `Tok::Eof`.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // `$len` is the token's byte length starting at the current `i`.
    macro_rules! push {
        ($tok:expr, $loc:expr, $len:expr) => {
            out.push(Token {
                tok: $tok,
                loc: $loc,
                span: Span::new(i as u32, (i + $len) as u32),
            })
        };
    }

    while i < bytes.len() {
        let loc = Loc { line, col };
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '%' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, loc, 1);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, loc, 1);
                i += 1;
                col += 1;
            }
            '[' => {
                push!(Tok::LBracket, loc, 1);
                i += 1;
                col += 1;
            }
            ']' => {
                push!(Tok::RBracket, loc, 1);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, loc, 1);
                i += 1;
                col += 1;
            }
            '.' => {
                // Disambiguate end-of-clause '.' from a decimal point: a
                // decimal point is always preceded and followed by a digit
                // and handled inside number lexing, so '.' here is a Dot.
                push!(Tok::Dot, loc, 1);
                i += 1;
                col += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    push!(Tok::Turnstile, loc, 2);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Colon, loc, 1);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                // `=r` only when followed by 'r' NOT continuing into a
                // longer identifier (e.g. `=result` is not a token).
                if i + 1 < bytes.len()
                    && bytes[i + 1] == b'r'
                    && !(i + 2 < bytes.len() && is_ident_char(bytes[i + 2]))
                {
                    push!(Tok::EqR, loc, 2);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Eq, loc, 1);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ne, loc, 2);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Bang, loc, 1);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, loc, 2);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, loc, 1);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, loc, 2);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, loc, 1);
                    i += 1;
                    col += 1;
                }
            }
            '+' => {
                push!(Tok::Plus, loc, 1);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(Tok::Minus, loc, 1);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, loc, 1);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(Tok::Slash, loc, 1);
                i += 1;
                col += 1;
            }
            '\'' => {
                // Quoted constant symbol: 'any text'.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    if bytes[j] == b'\n' {
                        return Err(ParseError::new(loc, "unterminated quoted symbol"));
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(loc, "unterminated quoted symbol"));
                }
                let text = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| ParseError::new(loc, "invalid UTF-8 in quoted symbol"))?;
                push!(Tok::Ident(text.to_string()), loc, j + 1 - i);
                col += (j + 1 - i) as u32;
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Fractional part only when '.' is followed by a digit, so
                // `p(a,3).` lexes as number 3 then Dot.
                if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                // Exponent part.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..j]).expect("ascii digits");
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(loc, format!("invalid number '{text}'")))?;
                push!(Tok::Num(value), loc, j - i);
                col += (j - i) as u32;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                let text = std::str::from_utf8(&bytes[start..j]).expect("ascii ident");
                let tok = if c.is_ascii_uppercase() || c == '_' {
                    Tok::UpIdent(text.to_string())
                } else {
                    Tok::Ident(text.to_string())
                };
                push!(tok, loc, j - i);
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    loc,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        loc: Loc { line, col },
        span: Span::new(i as u32, i as u32),
    });
    Ok(out)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_rule() {
        let ts = toks("s(X, Y, C) :- arc(X, Y, C).");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("s".into()),
                Tok::LParen,
                Tok::UpIdent("X".into()),
                Tok::Comma,
                Tok::UpIdent("Y".into()),
                Tok::Comma,
                Tok::UpIdent("C".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("arc".into()),
                Tok::LParen,
                Tok::UpIdent("X".into()),
                Tok::Comma,
                Tok::UpIdent("Y".into()),
                Tok::Comma,
                Tok::UpIdent("C".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_eq_r_only_when_isolated() {
        assert_eq!(toks("=r "), vec![Tok::EqR, Tok::Eof]);
        assert_eq!(
            toks("=result"),
            vec![Tok::Eq, Tok::Ident("result".into()), Tok::Eof]
        );
        assert_eq!(toks("=r2")[0], Tok::Eq); // 'r2' is an identifier
    }

    #[test]
    fn lexes_numbers_and_dots() {
        assert_eq!(
            toks("p(a, 3)."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Num(3.0),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
        assert_eq!(toks("0.5")[0], Tok::Num(0.5));
        assert_eq!(toks("1e3")[0], Tok::Num(1000.0));
        assert_eq!(toks("2.5e-1")[0], Tok::Num(0.25));
        // trailing clause dot after an integer
        let ts = toks("n(3).");
        assert_eq!(ts[3], Tok::RParen);
        assert_eq!(ts[4], Tok::Dot);
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            toks("N >= K, M < 2, A != B, C <= D, E > F"),
            vec![
                Tok::UpIdent("N".into()),
                Tok::Ge,
                Tok::UpIdent("K".into()),
                Tok::Comma,
                Tok::UpIdent("M".into()),
                Tok::Lt,
                Tok::Num(2.0),
                Tok::Comma,
                Tok::UpIdent("A".into()),
                Tok::Ne,
                Tok::UpIdent("B".into()),
                Tok::Comma,
                Tok::UpIdent("C".into()),
                Tok::Le,
                Tok::UpIdent("D".into()),
                Tok::Comma,
                Tok::UpIdent("E".into()),
                Tok::Gt,
                Tok::UpIdent("F".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("p(a). % trailing comment\n% full line\nq(b)."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn quoted_symbols() {
        assert_eq!(
            toks("'Hello World'"),
            vec![Tok::Ident("Hello World".into()), Tok::Eof]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn tracks_locations() {
        let tokens = tokenize("p(a).\n  q(b).").unwrap();
        let q = tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("q".into()))
            .unwrap();
        assert_eq!(q.loc.line, 2);
        assert_eq!(q.loc.col, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("p(a) @ q(b)").is_err());
    }

    #[test]
    fn underscore_starts_variable() {
        assert_eq!(toks("_x")[0], Tok::UpIdent("_x".into()));
    }
}
