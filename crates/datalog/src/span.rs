//! Byte-span source locations.
//!
//! Every syntax node carries a [`Span`] — a half-open byte range into the
//! source text it was parsed from. Nodes built programmatically (tests,
//! rewrites like GGZ, the engine's ground atoms) carry [`Span::DUMMY`];
//! spans are deliberately *transparent* to equality and hashing so a
//! synthesized node compares equal to its parsed twin.
//!
//! [`LineIndex`] converts byte offsets back to 1-based line/column
//! positions for rendering, without every node paying for line tracking.

use crate::error::Loc;
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// The span of synthesized nodes with no source text.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// Does this span point at real source text?
    pub fn is_dummy(self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`. A dummy operand
    /// yields the other span unchanged.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }

    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line/column positions and back to line
/// text. Build once per source string; lookups are binary searches.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the start of each line (line 1 starts at 0).
    line_starts: Vec<u32>,
    len: u32,
}

impl LineIndex {
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// The 1-based line/column of a byte offset. Offsets past the end
    /// clamp to the final position.
    pub fn loc(&self, offset: u32) -> Loc {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Loc {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Number of lines in the source (at least 1).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// The text of a 1-based line, without its trailing newline.
    pub fn line_text<'a>(&self, src: &'a str, line: u32) -> &'a str {
        let i = (line as usize - 1).min(self.line_starts.len() - 1);
        let start = self.line_starts[i] as usize;
        let end = self
            .line_starts
            .get(i + 1)
            .map(|&e| e as usize)
            .unwrap_or(src.len());
        src[start..end].trim_end_matches(['\n', '\r'])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_dummy() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(Span::DUMMY.to(b), b);
        assert_eq!(a.to(Span::DUMMY), a);
        assert!(Span::DUMMY.is_dummy());
        assert!(!a.is_dummy());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn line_index_locates_offsets() {
        let src = "abc\ndef\n\nxy";
        let idx = LineIndex::new(src);
        assert_eq!(idx.loc(0), Loc { line: 1, col: 1 });
        assert_eq!(idx.loc(2), Loc { line: 1, col: 3 });
        assert_eq!(idx.loc(4), Loc { line: 2, col: 1 });
        assert_eq!(idx.loc(8), Loc { line: 3, col: 1 });
        assert_eq!(idx.loc(9), Loc { line: 4, col: 1 });
        assert_eq!(idx.loc(11), Loc { line: 4, col: 3 });
        // past-the-end clamps
        assert_eq!(idx.loc(99), Loc { line: 4, col: 3 });
        assert_eq!(idx.line_count(), 4);
    }

    #[test]
    fn line_text_strips_newlines() {
        let src = "abc\r\ndef\nlast";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_text(src, 1), "abc");
        assert_eq!(idx.line_text(src, 2), "def");
        assert_eq!(idx.line_text(src, 3), "last");
    }
}
