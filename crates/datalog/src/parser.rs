//! Recursive-descent parser for the maglog rule language.
//!
//! Grammar (see the crate docs for examples):
//!
//! ```text
//! program    := item*
//! item       := declare | constraint | clause
//! declare    := "declare" "pred" IDENT "/" NUM [cost] "."
//!             | "declare" "default" IDENT "/" NUM "."
//! cost       := "cost" IDENT ["default"]
//! constraint := ["constraint"] ":-" body "."
//! clause     := atom [":-" body] "."
//! body       := literal ("," literal)*
//! literal    := ("!" | "not") atom
//!             | atom
//!             | term ("=" | "=r") AGGNAME [VAR] ":" aggbody   -- aggregate
//!             | expr CMP expr                                  -- builtin
//! aggbody    := atom | "[" atom ("," atom)* "]"
//! expr       := mulexpr (("+" | "-") mulexpr)*
//! mulexpr    := unary (("*" | "/") unary)*
//! unary      := ["-"] primary
//! primary    := NUM | VAR | IDENT | "(" expr ")"
//! ```
//!
//! Disambiguation between a builtin equality `C = C1 + C2` and an aggregate
//! `C = min D : ...` is by lookahead after `=`: an aggregate-function name
//! followed by an optional variable and a `:` parses as an aggregate. The
//! `=r` token always introduces an aggregate (Definition 2.4 only defines
//! `=r` for aggregate subgoals).

use crate::ast::*;
use crate::error::{Loc, ParseError};
use crate::lexer::{tokenize, Tok, Token};
use crate::span::{LineIndex, Span};
use crate::validate::validate;

/// Parse and validate a complete program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let program = parse_program_raw(src)?;
    validate(&program).map_err(|e| {
        let loc = LineIndex::new(src).loc(e.span.start);
        ParseError::with_span(loc, e.span, e.message)
    })?;
    Ok(program)
}

/// Parse without running program-level validation. Diagnostics tooling
/// uses this so validation failures keep their [`ValidateKind`] and span
/// instead of collapsing into a generic parse error.
///
/// [`ValidateKind`]: crate::error::ValidateKind
pub fn parse_program_raw(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        program: Program::new(),
    };
    parser.parse()?;
    Ok(parser.program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].tok
    }

    fn loc(&self) -> Loc {
        self.tokens[self.pos].loc
    }

    /// Byte offset where the next token starts.
    fn cur_start(&self) -> u32 {
        self.tokens[self.pos].span.start
    }

    /// Byte offset where the previously consumed token ended.
    fn prev_end(&self) -> u32 {
        self.tokens[self.pos.saturating_sub(1)].span.end
    }

    fn bump(&mut self) -> Tok {
        let tok = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.loc(),
                format!("expected {tok}, found {}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                self.loc(),
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn parse(&mut self) -> Result<(), ParseError> {
        while *self.peek() != Tok::Eof {
            self.item()?;
        }
        Ok(())
    }

    fn item(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(kw) if kw == "declare" => self.declaration(),
            Tok::Ident(kw) if kw == "constraint" => {
                let start = self.cur_start();
                self.bump();
                self.expect(&Tok::Turnstile)?;
                let body = self.body()?;
                self.expect(&Tok::Dot)?;
                let span = Span::new(start, self.prev_end());
                self.program.constraints.push(Constraint { body, span });
                Ok(())
            }
            Tok::Turnstile => {
                let start = self.cur_start();
                self.bump();
                let body = self.body()?;
                self.expect(&Tok::Dot)?;
                let span = Span::new(start, self.prev_end());
                self.program.constraints.push(Constraint { body, span });
                Ok(())
            }
            _ => self.clause(),
        }
    }

    fn declaration(&mut self) -> Result<(), ParseError> {
        let start = self.cur_start();
        self.bump(); // 'declare'
        let kind = self.expect_ident("'pred' or 'default'")?;
        match kind.as_str() {
            "pred" => {
                let name = self.expect_ident("predicate name")?;
                self.expect(&Tok::Slash)?;
                let arity = self.number("arity")? as usize;
                let mut cost = None;
                if let Tok::Ident(kw) = self.peek() {
                    if kw == "cost" {
                        self.bump();
                        let dom_loc = self.loc();
                        let dom_name = self.expect_ident("cost domain name")?;
                        let domain = DomainSpec::from_name(&dom_name).ok_or_else(|| {
                            ParseError::new(
                                dom_loc,
                                format!("unknown cost domain '{dom_name}'"),
                            )
                        })?;
                        let mut has_default = false;
                        if let Tok::Ident(kw) = self.peek() {
                            if kw == "default" {
                                self.bump();
                                has_default = true;
                            }
                        }
                        cost = Some(CostSpec {
                            domain,
                            has_default,
                        });
                    }
                }
                self.expect(&Tok::Dot)?;
                let span = Span::new(start, self.prev_end());
                let pred = self.program.pred(&name);
                self.program.decls.insert(
                    pred,
                    PredDecl {
                        pred,
                        arity,
                        cost,
                        span,
                    },
                );
                Ok(())
            }
            "default" => {
                // `declare default t/2.` — marks an already (or later)
                // declared cost predicate as default-valued. Requires the
                // pred to be declared with a cost domain eventually;
                // validation enforces this.
                let name = self.expect_ident("predicate name")?;
                self.expect(&Tok::Slash)?;
                let arity = self.number("arity")? as usize;
                self.expect(&Tok::Dot)?;
                let span = Span::new(start, self.prev_end());
                let pred = self.program.pred(&name);
                let decl = self
                    .program
                    .decls
                    .entry(pred)
                    .or_insert(PredDecl {
                        pred,
                        arity,
                        cost: None,
                        span,
                    });
                match &mut decl.cost {
                    Some(spec) => spec.has_default = true,
                    None => {
                        // Default to the boolean-or domain, matching the
                        // paper's implicit-boolean-cost convention.
                        decl.cost = Some(CostSpec {
                            domain: DomainSpec::BoolOr,
                            has_default: true,
                        });
                    }
                }
                Ok(())
            }
            other => Err(ParseError::new(
                self.loc(),
                format!("expected 'pred' or 'default' after 'declare', found '{other}'"),
            )),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.bump() {
            Tok::Num(n) => Ok(n),
            other => Err(ParseError::new(
                self.loc(),
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn clause(&mut self) -> Result<(), ParseError> {
        let start = self.cur_start();
        let head = self.atom()?;
        match self.peek() {
            Tok::Turnstile => {
                self.bump();
                let body = self.body()?;
                self.expect(&Tok::Dot)?;
                let span = Span::new(start, self.prev_end());
                self.program.rules.push(Rule { head, body, span });
            }
            Tok::Dot => {
                self.bump();
                let span = Span::new(start, self.prev_end());
                if head.args.iter().all(|t| matches!(t, Term::Const(_))) {
                    self.program.facts.push(head);
                } else {
                    // A headless-body-free rule with variables is a
                    // (vacuously quantified) rule; keep it as a rule so the
                    // range-restriction checker can reject it.
                    self.program.rules.push(Rule {
                        head,
                        body: Vec::new(),
                        span,
                    });
                }
            }
            other => {
                return Err(ParseError::new(
                    self.loc(),
                    format!("expected ':-' or '.', found {other}"),
                ))
            }
        }
        Ok(())
    }

    fn body(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut lits = vec![self.literal()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(Literal::Neg(self.atom()?))
            }
            Tok::Ident(kw) if kw == "not" && *self.peek_at(1) == Tok::LParen => {
                // `not(...)`? No: `not atom` — an atom's pred can't be 'not'
                // followed by '(' with our grammar, so treat bare `not` as
                // negation only when followed by an identifier.
                self.bump();
                Ok(Literal::Neg(self.atom()?))
            }
            Tok::Ident(kw) if kw == "not" && matches!(self.peek_at(1), Tok::Ident(_)) => {
                self.bump();
                Ok(Literal::Neg(self.atom()?))
            }
            Tok::Ident(_) if *self.peek_at(1) == Tok::LParen => {
                // An ordinary atom — unless it turns out to be an aggregate
                // result constant, which we don't support on atoms.
                Ok(Literal::Pos(self.atom()?))
            }
            _ => self.builtin_or_aggregate(),
        }
    }

    /// Parse either a built-in comparison or an aggregate subgoal. Both
    /// start with a term/expression.
    fn builtin_or_aggregate(&mut self) -> Result<Literal, ParseError> {
        let lhs_start = self.pos;
        let lhs = self.expr()?;
        match self.peek().clone() {
            Tok::EqR => {
                self.bump();
                let result = self.simple_term_from_expr(&lhs, lhs_start)?;
                self.aggregate(result, AggEq::Restricted, lhs_start)
            }
            Tok::Eq if self.looks_like_aggregate() => {
                self.bump();
                let result = self.simple_term_from_expr(&lhs, lhs_start)?;
                self.aggregate(result, AggEq::Total, lhs_start)
            }
            Tok::Eq => {
                self.bump();
                let rhs = self.expr()?;
                let span = Span::new(self.tokens[lhs_start].span.start, self.prev_end());
                Ok(Literal::Builtin(Builtin {
                    op: CmpOp::Eq,
                    lhs,
                    rhs,
                    span,
                }))
            }
            Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => {
                let op = match self.bump() {
                    Tok::Ne => CmpOp::Ne,
                    Tok::Lt => CmpOp::Lt,
                    Tok::Le => CmpOp::Le,
                    Tok::Gt => CmpOp::Gt,
                    Tok::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                let rhs = self.expr()?;
                let span = Span::new(self.tokens[lhs_start].span.start, self.prev_end());
                Ok(Literal::Builtin(Builtin { op, lhs, rhs, span }))
            }
            other => Err(ParseError::new(
                self.loc(),
                format!("expected comparison or aggregate after expression, found {other}"),
            )),
        }
    }

    /// After `term =`, is what follows an aggregate application? True when
    /// the next token is a known aggregate-function name followed by
    /// either `:` or a variable-then-`:`.
    fn looks_like_aggregate(&self) -> bool {
        // self.pos currently points at the '=' token.
        let Tok::Ident(name) = self.peek_at(1) else {
            return false;
        };
        if AggFunc::from_name(name).is_none() {
            return false;
        }
        match self.peek_at(2) {
            Tok::Colon => true,
            Tok::UpIdent(_) => *self.peek_at(3) == Tok::Colon,
            _ => false,
        }
    }

    fn simple_term_from_expr(&self, expr: &Expr, at: usize) -> Result<Term, ParseError> {
        match expr {
            Expr::Term(t) => Ok(*t),
            _ => Err(ParseError::new(
                self.tokens[at].loc,
                "aggregate result must be a variable or constant, not an expression",
            )),
        }
    }

    fn aggregate(
        &mut self,
        result: Term,
        eq: AggEq,
        start_tok: usize,
    ) -> Result<Literal, ParseError> {
        let func_loc = self.loc();
        let func_name = self.expect_ident("aggregate function name")?;
        let func = AggFunc::from_name(&func_name).ok_or_else(|| {
            ParseError::new(func_loc, format!("unknown aggregate function '{func_name}'"))
        })?;
        let multiset_var = match self.peek() {
            Tok::UpIdent(name) => {
                let v = Var(self.program.symbols.intern(name));
                self.bump();
                Some(v)
            }
            _ => None,
        };
        self.expect(&Tok::Colon)?;
        let conjuncts = if *self.peek() == Tok::LBracket {
            self.bump();
            let mut atoms = vec![self.atom()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                atoms.push(self.atom()?);
            }
            self.expect(&Tok::RBracket)?;
            atoms
        } else {
            vec![self.atom()?]
        };
        let span = Span::new(self.tokens[start_tok].span.start, self.prev_end());
        Ok(Literal::Agg(Aggregate {
            result,
            eq,
            func,
            multiset_var,
            conjuncts,
            span,
        }))
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name_loc = self.loc();
        let start = self.cur_start();
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => {
                return Err(ParseError::with_span(
                    name_loc,
                    self.tokens[self.pos.saturating_sub(1)].span,
                    format!("expected predicate name, found {other}"),
                ))
            }
        };
        let pred = self.program.pred(&name);
        let mut args = Vec::new();
        let mut arg_spans = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            if *self.peek() != Tok::RParen {
                let mut arg = |p: &mut Self| -> Result<(), ParseError> {
                    let s = p.cur_start();
                    args.push(p.term()?);
                    arg_spans.push(Span::new(s, p.prev_end()));
                    Ok(())
                };
                arg(self)?;
                while *self.peek() == Tok::Comma {
                    self.bump();
                    arg(self)?;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Atom {
            pred,
            args,
            span: Span::new(start, self.prev_end()),
            arg_spans,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let loc = self.loc();
        match self.bump() {
            Tok::UpIdent(name) => Ok(Term::Var(Var(self.program.symbols.intern(&name)))),
            Tok::Ident(name) => Ok(Term::Const(Const::Sym(self.program.symbols.intern(&name)))),
            Tok::Num(n) => Ok(Term::Const(Const::Num(n.into()))),
            Tok::Minus => match self.bump() {
                Tok::Num(n) => Ok(Term::Const(Const::Num((-n).into()))),
                other => Err(ParseError::new(
                    loc,
                    format!("expected number after '-', found {other}"),
                )),
            },
            other => Err(ParseError::new(
                loc,
                format!("expected term, found {other}"),
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Minus {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.bump() {
            Tok::Num(n) => Ok(Expr::Term(Term::Const(Const::Num(n.into())))),
            Tok::UpIdent(name) => Ok(Expr::Term(Term::Var(Var(
                self.program.symbols.intern(&name)
            )))),
            Tok::Ident(name) if (name == "min" || name == "max") && *self.peek() == Tok::LParen => {
                self.bump(); // '('
                let lhs = self.expr()?;
                self.expect(&Tok::Comma)?;
                let rhs = self.expr()?;
                self.expect(&Tok::RParen)?;
                let op = if name == "min" { BinOp::Min } else { BinOp::Max };
                Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
            }
            Tok::Ident(name) => Ok(Expr::Term(Term::Const(Const::Sym(
                self.program.symbols.intern(&name),
            )))),
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            other => Err(ParseError::new(
                loc,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shortest_path_program() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.constraints.len(), 1);
        let s = p.find_pred("s").unwrap();
        assert!(p.is_cost_pred(s));
        assert_eq!(p.cost_spec(s).unwrap().domain, DomainSpec::MinReal);
        // Third rule: single aggregate literal with =r and min.
        let r = &p.rules[2];
        match &r.body[0] {
            Literal::Agg(a) => {
                assert_eq!(a.eq, AggEq::Restricted);
                assert_eq!(a.func, AggFunc::Min);
                assert!(a.multiset_var.is_some());
                assert_eq!(a.conjuncts.len(), 1);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_company_control_program() {
        let p = parse_program(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        // Last rule has a builtin N > 0.5.
        match &p.rules[3].body[1] {
            Literal::Builtin(b) => assert_eq!(b.op, CmpOp::Gt),
            other => panic!("expected builtin, got {other:?}"),
        }
    }

    #[test]
    fn parses_total_aggregate_and_comparison() {
        // Party invitations: `=` (total) count with no multiset variable.
        let p = parse_program(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        )
        .unwrap();
        match &p.rules[0].body[1] {
            Literal::Agg(a) => {
                assert_eq!(a.eq, AggEq::Total);
                assert_eq!(a.func, AggFunc::Count);
                assert!(a.multiset_var.is_none());
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_conjunction_aggregate() {
        let p = parse_program(
            r#"
            declare pred t/2 cost bool_or default.
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#,
        )
        .unwrap();
        match &p.rules[0].body[1] {
            Literal::Agg(a) => {
                assert_eq!(a.func, AggFunc::And);
                assert_eq!(a.conjuncts.len(), 2);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        let t = p.find_pred("t").unwrap();
        assert!(p.has_default(t));
    }

    #[test]
    fn distinguishes_builtin_equality_from_aggregate() {
        let p = parse_program("p(X, C) :- q(X, A, B), C = A + B.").unwrap();
        match &p.rules[0].body[1] {
            Literal::Builtin(b) => {
                assert_eq!(b.op, CmpOp::Eq);
                assert!(matches!(b.rhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("expected builtin, got {other:?}"),
        }
        // `C = min(...)` style where min is a bare constant should still be
        // a builtin since there is no ':' lookahead.
        let p2 = parse_program("p(X, C) :- q(X, C), D = min, r(D).");
        assert!(p2.is_ok());
    }

    #[test]
    fn parses_facts_and_negation() {
        let p = parse_program(
            r#"
            arc(a, b, 1).
            arc(b, b, 0).
            unreachable(X, Y) :- node(X), node(Y), ! reach(X, Y).
            "#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 2);
        assert!(matches!(p.rules[0].body[2], Literal::Neg(_)));
    }

    #[test]
    fn parses_not_keyword_negation() {
        let p = parse_program("unreach(X, Y) :- node(X), node(Y), not reach(X, Y).").unwrap();
        assert!(matches!(p.rules[0].body[2], Literal::Neg(_)));
    }

    #[test]
    fn declare_default_standalone() {
        let p = parse_program(
            r#"
            declare pred t/2 cost bool_or.
            declare default t/2.
            t(W, C) :- input(W, C).
            "#,
        )
        .unwrap();
        let t = p.find_pred("t").unwrap();
        assert!(p.has_default(t));
    }

    #[test]
    fn rejects_unknown_domain_and_aggregate() {
        assert!(parse_program("declare pred p/2 cost lunar.").is_err());
        assert!(parse_program("p(X, C) :- C =r median D : q(X, D).").is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_missing_dot() {
        assert!(parse_program("p(a)").is_err());
        assert!(parse_program("p(a). )").is_err());
    }

    #[test]
    fn parses_negative_weights() {
        let p = parse_program("arc(a, b, -2.5).").unwrap();
        match p.facts[0].args[2] {
            Term::Const(Const::Num(n)) => assert_eq!(n.get(), -2.5),
            ref other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn halfsum_program_parses() {
        let p = parse_program(
            r#"
            declare pred p/2 cost nonneg_real.
            p(b, 1).
            p(a, C) :- C =r halfsum D : p(X, D).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.facts.len(), 1);
    }
}
