//! Abstract syntax for Datalog with monotonic aggregation.

use crate::span::Span;
use crate::symbols::{Sym, SymbolTable};
use maglog_lattice::Real;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A variable (interned name).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Sym);

/// A predicate symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub Sym);

/// A constant: an uninterpreted symbol or a number.
///
/// The paper's built-in domains are numeric; booleans are written as the
/// numerals `0`/`1` (as in Example 4.4's `input(W, 1)`) and converted to the
/// declared cost domain by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    Sym(Sym),
    Num(Real),
}

/// A term: a variable or a constant. Arguments are flat — the language has
/// no uninterpreted function symbols, which (together with well-founded cost
/// orders) is the paper's Section 6.2 condition for terminating bottom-up
/// evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    Var(Var),
    Const(Const),
}

impl Term {
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    pub fn as_const(&self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }
}

/// An atom `p(t1, ..., tn)`. If `p` is a cost predicate, the **last**
/// argument is the cost argument.
///
/// Spans are transparent to equality and hashing: a ground atom the engine
/// synthesizes compares equal to the same atom parsed from source.
#[derive(Clone, Debug)]
pub struct Atom {
    pub pred: Pred,
    pub args: Vec<Term>,
    /// Byte span of the whole atom in the source; dummy when synthesized.
    pub span: Span,
    /// Byte span of each argument; empty when synthesized.
    pub arg_spans: Vec<Span>,
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.pred == other.pred && self.args == other.args
    }
}

impl Eq for Atom {}

impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pred.hash(state);
        self.args.hash(state);
    }
}

impl Atom {
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom {
            pred,
            args,
            span: Span::DUMMY,
            arg_spans: Vec::new(),
        }
    }

    /// The span of argument `i`, falling back to the atom's own span when
    /// per-argument spans were not recorded (synthesized atoms).
    pub fn arg_span(&self, i: usize) -> Span {
        self.arg_spans.get(i).copied().unwrap_or(self.span)
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The non-cost arguments, given whether the predicate has a cost
    /// argument.
    pub fn key_args(&self, has_cost: bool) -> &[Term] {
        if has_cost {
            &self.args[..self.args.len() - 1]
        } else {
            &self.args
        }
    }

    /// The cost argument, if the predicate has one.
    pub fn cost_arg(&self, has_cost: bool) -> Option<&Term> {
        if has_cost {
            self.args.last()
        } else {
            None
        }
    }

    /// All variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }
}

/// Comparison operators allowed in built-in subgoals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Binary arithmetic operators in built-in expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Binary minimum, written `min(a, b)` — the combiner of widest-path
    /// style programs.
    Min,
    /// Binary maximum, written `max(a, b)`.
    Max,
}

/// An arithmetic expression over terms.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Term(Term),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All variables occurring in the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Term(Term::Var(v)) => out.push(*v),
            Expr::Term(Term::Const(_)) => {}
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// Is this a bare variable?
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Expr::Term(Term::Var(v)) => Some(*v),
            _ => None,
        }
    }
}

/// A built-in subgoal `lhs op rhs` (Section 2.2: equalities and comparisons
/// over arithmetic expressions on the cost domains).
#[derive(Clone, Debug)]
pub struct Builtin {
    pub op: CmpOp,
    pub lhs: Expr,
    pub rhs: Expr,
    /// Byte span of the subgoal in the source; dummy when synthesized.
    pub span: Span,
}

impl PartialEq for Builtin {
    fn eq(&self, other: &Self) -> bool {
        self.op == other.op && self.lhs == other.lhs && self.rhs == other.rhs
    }
}

impl Builtin {
    pub fn new(op: CmpOp, lhs: Expr, rhs: Expr) -> Self {
        Builtin {
            op,
            lhs,
            rhs,
            span: Span::DUMMY,
        }
    }

    pub fn vars(&self) -> Vec<Var> {
        let mut v = self.lhs.vars();
        v.extend(self.rhs.vars());
        v
    }
}

/// Which equality joins the aggregate variable to the aggregate: the total
/// form `=` (defined on empty groups) or the restricted form `=r`
/// (Definition 2.4: *false* when the multiset is empty, matching SQL).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggEq {
    Total,
    Restricted,
}

/// The aggregate functions of Figure 1 plus the pseudo-monotonic `average`
/// (Section 4.1.1) and `halfsum` (Example 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Min,
    Max,
    Sum,
    Count,
    Product,
    And,
    Or,
    Union,
    Intersect,
    Avg,
    HalfSum,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Product => "product",
            AggFunc::And => "and",
            AggFunc::Or => "or",
            AggFunc::Union => "union",
            AggFunc::Intersect => "intersect",
            AggFunc::Avg => "avg",
            AggFunc::HalfSum => "halfsum",
        }
    }

    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "product" | "prod" => AggFunc::Product,
            "and" => AggFunc::And,
            "or" => AggFunc::Or,
            "union" => AggFunc::Union,
            "intersect" | "intersection" => AggFunc::Intersect,
            "avg" | "average" => AggFunc::Avg,
            "halfsum" => AggFunc::HalfSum,
            _ => return None,
        })
    }
}

/// An aggregate subgoal (Definition 2.4):
///
/// ```text
/// C  =  F E : [p1(...), ..., pk(...)]
/// C  =r F E : [p1(...), ..., pk(...)]
/// ```
///
/// `result` is the aggregate variable `C`; `multiset_var` is `E` (absent for
/// aggregates over an implicit boolean cost argument, like `count : q(X)`);
/// `conjuncts` is the conjunction of atoms being aggregated over. Grouping
/// variables are the conjunct variables that also occur *outside* the
/// subgoal; local variables occur only inside (computed per rule, see
/// [`Rule::aggregate_grouping_vars`]).
#[derive(Clone, Debug)]
pub struct Aggregate {
    pub result: Term,
    pub eq: AggEq,
    pub func: AggFunc,
    pub multiset_var: Option<Var>,
    pub conjuncts: Vec<Atom>,
    /// Byte span of the whole subgoal in the source; dummy when synthesized.
    pub span: Span,
}

impl PartialEq for Aggregate {
    fn eq(&self, other: &Self) -> bool {
        self.result == other.result
            && self.eq == other.eq
            && self.func == other.func
            && self.multiset_var == other.multiset_var
            && self.conjuncts == other.conjuncts
    }
}

impl Aggregate {
    /// Variables occurring in the conjuncts (including the multiset var).
    pub fn inner_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in &self.conjuncts {
            out.extend(a.vars());
        }
        out
    }
}

/// A body literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    Pos(Atom),
    Neg(Atom),
    Agg(Aggregate),
    Builtin(Builtin),
}

impl Literal {
    pub fn as_pos(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) => Some(a),
            _ => None,
        }
    }

    /// The byte span of the literal (dummy when synthesized).
    pub fn span(&self) -> Span {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.span,
            Literal::Agg(agg) => agg.span,
            Literal::Builtin(b) => b.span,
        }
    }
}

/// A rule `head :- body`.
#[derive(Clone, Debug)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
    /// Byte span of the whole clause (through its final `.`); dummy when
    /// synthesized.
    pub span: Span,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.body == other.body
    }
}

impl Rule {
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule {
            head,
            body,
            span: Span::DUMMY,
        }
    }

    /// Is this a fact (empty body, ground head checked elsewhere)?
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Variables occurring outside a given aggregate subgoal (head plus all
    /// other body literals plus the aggregate's own result variable).
    pub fn vars_outside_aggregate(&self, agg_index: usize) -> Vec<Var> {
        let mut out: Vec<Var> = self.head.vars().collect();
        for (i, lit) in self.body.iter().enumerate() {
            match lit {
                Literal::Agg(a) if i == agg_index => {
                    if let Term::Var(v) = a.result {
                        out.push(v);
                    }
                }
                Literal::Pos(a) | Literal::Neg(a) => out.extend(a.vars()),
                Literal::Agg(a) => {
                    if let Term::Var(v) = a.result {
                        out.push(v);
                    }
                    out.extend(a.inner_vars());
                }
                Literal::Builtin(b) => out.extend(b.vars()),
            }
        }
        out
    }

    /// The grouping variables of the aggregate at body position
    /// `agg_index`: conjunct variables that also occur outside the subgoal
    /// (Definition 2.4). The multiset variable is never a grouping variable.
    pub fn aggregate_grouping_vars(&self, agg_index: usize) -> Vec<Var> {
        let Literal::Agg(agg) = &self.body[agg_index] else {
            return Vec::new();
        };
        let outside = self.vars_outside_aggregate(agg_index);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in agg.inner_vars() {
            if Some(v) != agg.multiset_var && outside.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// The local variables of the aggregate at `agg_index`: conjunct
    /// variables occurring only inside the subgoal (minus the multiset var).
    pub fn aggregate_local_vars(&self, agg_index: usize) -> Vec<Var> {
        let Literal::Agg(agg) = &self.body[agg_index] else {
            return Vec::new();
        };
        let outside = self.vars_outside_aggregate(agg_index);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in agg.inner_vars() {
            if Some(v) != agg.multiset_var && !outside.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Every variable of the rule.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut push = |v: Var| {
            if seen.insert(v) {
                out.push(v);
            }
        };
        for v in self.head.vars() {
            push(v);
        }
        for lit in &self.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.vars().for_each(&mut push),
                Literal::Builtin(b) => b.vars().into_iter().for_each(&mut push),
                Literal::Agg(agg) => {
                    if let Term::Var(v) = agg.result {
                        push(v);
                    }
                    agg.inner_vars().into_iter().for_each(&mut push);
                }
            }
        }
        out
    }
}

/// An integrity constraint (Definition 2.9): a headless rule whose body is
/// guaranteed never to be satisfied.
#[derive(Clone, Debug)]
pub struct Constraint {
    pub body: Vec<Literal>,
    /// Byte span of the whole constraint; dummy when synthesized.
    pub span: Span,
}

impl PartialEq for Constraint {
    fn eq(&self, other: &Self) -> bool {
        self.body == other.body
    }
}

impl Constraint {
    pub fn new(body: Vec<Literal>) -> Self {
        Constraint {
            body,
            span: Span::DUMMY,
        }
    }
}

/// The cost domains a cost argument may be declared over — one per row of
/// Figure 1 (set domains draw their universe from the active domain).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DomainSpec {
    /// `(R ∪ {±∞}, ≤)`: the `max` domain.
    MaxReal,
    /// `(R ∪ {±∞}, ≥)`: the `min` domain.
    MinReal,
    /// `(R* ∪ {∞}, ≤)`: the `sum` domain.
    NonNegReal,
    /// `(B, ≤)`: the `or`/`count` domain.
    BoolOr,
    /// `(B, ≥)`: the `and` domain.
    BoolAnd,
    /// `(N ∪ {∞}, ≤)`: the `count` range.
    Nat,
    /// `(N⁺ ∪ {∞}, ≤)`: the `product` domain.
    PosNat,
    /// `(2^S, ⊆)`: the `union` domain.
    SetUnion,
    /// `(2^S, ⊇)`: the `intersect` domain.
    SetIntersect,
}

impl DomainSpec {
    pub fn name(self) -> &'static str {
        match self {
            DomainSpec::MaxReal => "max_real",
            DomainSpec::MinReal => "min_real",
            DomainSpec::NonNegReal => "nonneg_real",
            DomainSpec::BoolOr => "bool_or",
            DomainSpec::BoolAnd => "bool_and",
            DomainSpec::Nat => "nat",
            DomainSpec::PosNat => "pos_nat",
            DomainSpec::SetUnion => "set_union",
            DomainSpec::SetIntersect => "set_intersect",
        }
    }

    pub fn from_name(name: &str) -> Option<DomainSpec> {
        Some(match name {
            "max_real" => DomainSpec::MaxReal,
            "min_real" => DomainSpec::MinReal,
            "nonneg_real" => DomainSpec::NonNegReal,
            "bool_or" | "bool" => DomainSpec::BoolOr,
            "bool_and" => DomainSpec::BoolAnd,
            "nat" => DomainSpec::Nat,
            "pos_nat" => DomainSpec::PosNat,
            "set_union" => DomainSpec::SetUnion,
            "set_intersect" => DomainSpec::SetIntersect,
        _ => return None,
        })
    }

    /// Is the numeric reading of this domain's `⊑` the reverse of `≤`?
    pub fn is_reversed(self) -> bool {
        matches!(
            self,
            DomainSpec::MinReal | DomainSpec::BoolAnd | DomainSpec::SetIntersect
        )
    }
}

/// The cost declaration of a predicate: which domain its (final) cost
/// argument ranges over, and whether the predicate is a *default-value cost
/// predicate* (Section 2.3.2). Per the paper, the default value is always
/// the domain's minimal element `⊥`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostSpec {
    pub domain: DomainSpec,
    pub has_default: bool,
}

/// A predicate declaration.
#[derive(Clone, Debug)]
pub struct PredDecl {
    pub pred: Pred,
    pub arity: usize,
    pub cost: Option<CostSpec>,
    /// Byte span of the `declare` item; dummy when synthesized.
    pub span: Span,
}

impl PartialEq for PredDecl {
    fn eq(&self, other: &Self) -> bool {
        self.pred == other.pred && self.arity == other.arity && self.cost == other.cost
    }
}

impl PredDecl {
    pub fn new(pred: Pred, arity: usize, cost: Option<CostSpec>) -> Self {
        PredDecl {
            pred,
            arity,
            cost,
            span: Span::DUMMY,
        }
    }
}

/// A parsed program: declarations, rules, integrity constraints, and any
/// ground facts given inline.
#[derive(Debug, Default)]
pub struct Program {
    pub symbols: SymbolTable,
    pub decls: HashMap<Pred, PredDecl>,
    pub rules: Vec<Rule>,
    pub constraints: Vec<Constraint>,
    pub facts: Vec<Atom>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a predicate name.
    pub fn pred(&self, name: &str) -> Pred {
        Pred(self.symbols.intern(name))
    }

    /// Look up a predicate by name without interning.
    pub fn find_pred(&self, name: &str) -> Option<Pred> {
        self.symbols.lookup(name).map(Pred)
    }

    pub fn pred_name(&self, pred: Pred) -> String {
        self.symbols.name(pred.0)
    }

    pub fn var_name(&self, var: Var) -> String {
        self.symbols.name(var.0)
    }

    /// Does `pred` have a declared cost argument?
    pub fn is_cost_pred(&self, pred: Pred) -> bool {
        self.decls
            .get(&pred)
            .is_some_and(|d| d.cost.is_some())
    }

    /// The declared cost spec of `pred`, if any.
    pub fn cost_spec(&self, pred: Pred) -> Option<CostSpec> {
        self.decls.get(&pred).and_then(|d| d.cost)
    }

    /// Is `pred` a default-value cost predicate?
    pub fn has_default(&self, pred: Pred) -> bool {
        self.cost_spec(pred).is_some_and(|c| c.has_default)
    }

    /// Declared (or inferred) arity of `pred`.
    pub fn arity(&self, pred: Pred) -> Option<usize> {
        self.decls.get(&pred).map(|d| d.arity)
    }

    /// All predicates appearing in rule heads.
    pub fn head_preds(&self) -> std::collections::BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// All predicates mentioned anywhere in the program.
    pub fn all_preds(&self) -> std::collections::BTreeSet<Pred> {
        let mut out = std::collections::BTreeSet::new();
        for rule in &self.rules {
            out.insert(rule.head.pred);
            for lit in &rule.body {
                collect_literal_preds(lit, &mut out);
            }
        }
        for c in &self.constraints {
            for lit in &c.body {
                collect_literal_preds(lit, &mut out);
            }
        }
        for f in &self.facts {
            out.insert(f.pred);
        }
        out.extend(self.decls.keys().copied());
        out
    }
}

fn collect_literal_preds(lit: &Literal, out: &mut std::collections::BTreeSet<Pred>) {
    match lit {
        Literal::Pos(a) | Literal::Neg(a) => {
            out.insert(a.pred);
        }
        Literal::Agg(agg) => {
            for a in &agg.conjuncts {
                out.insert(a.pred);
            }
        }
        Literal::Builtin(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        // Build by hand: coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
        let p = Program::new();
        p.pred("coming");
        p
    }

    #[test]
    fn atom_key_and_cost_args() {
        let p = Program::new();
        let pred = p.pred("s");
        let x = Var(p.symbols.intern("X"));
        let c = Var(p.symbols.intern("C"));
        let atom = Atom::new(pred, vec![Term::Var(x), Term::Var(c)]);
        assert_eq!(atom.key_args(true).len(), 1);
        assert_eq!(atom.cost_arg(true), Some(&Term::Var(c)));
        assert_eq!(atom.key_args(false).len(), 2);
        assert_eq!(atom.cost_arg(false), None);
    }

    #[test]
    fn grouping_and_local_vars_follow_definition_2_4() {
        // s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        // Grouping: X, Y (appear outside). Local: Z. Multiset: D.
        let p = Program::new();
        let s = p.pred("s");
        let path = p.pred("path");
        let v = |n: &str| Var(p.symbols.intern(n));
        let (x, y, z, c, d) = (v("X"), v("Y"), v("Z"), v("C"), v("D"));
        let rule = Rule::new(
            Atom::new(s, vec![Term::Var(x), Term::Var(y), Term::Var(c)]),
            vec![Literal::Agg(Aggregate {
                result: Term::Var(c),
                eq: AggEq::Restricted,
                func: AggFunc::Min,
                multiset_var: Some(d),
                conjuncts: vec![Atom::new(
                    path,
                    vec![Term::Var(x), Term::Var(z), Term::Var(y), Term::Var(d)],
                )],
                span: Span::DUMMY,
            })],
        );
        assert_eq!(rule.aggregate_grouping_vars(0), vec![x, y]);
        assert_eq!(rule.aggregate_local_vars(0), vec![z]);
    }

    #[test]
    fn vars_outside_excludes_aggregate_internals() {
        let p = sample_program();
        let coming = p.pred("coming");
        let requires = p.pred("requires");
        let kc = p.pred("kc");
        let v = |n: &str| Var(p.symbols.intern(n));
        let (x, k, n, y) = (v("X"), v("K"), v("N"), v("Y"));
        let rule = Rule::new(
            Atom::new(coming, vec![Term::Var(x)]),
            vec![
                Literal::Pos(Atom::new(requires, vec![Term::Var(x), Term::Var(k)])),
                Literal::Agg(Aggregate {
                    result: Term::Var(n),
                    eq: AggEq::Total,
                    func: AggFunc::Count,
                    multiset_var: None,
                    conjuncts: vec![Atom::new(kc, vec![Term::Var(x), Term::Var(y)])],
                    span: Span::DUMMY,
                }),
                Literal::Builtin(Builtin::new(
                    CmpOp::Ge,
                    Expr::Term(Term::Var(n)),
                    Expr::Term(Term::Var(k)),
                )),
            ],
        );
        // X is a grouping var (appears in requires and head); Y is local.
        assert_eq!(rule.aggregate_grouping_vars(1), vec![x]);
        assert_eq!(rule.aggregate_local_vars(1), vec![y]);
        assert_eq!(rule.all_vars(), vec![x, k, n, y]);
    }

    #[test]
    fn agg_func_round_trips_names() {
        for f in [
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Product,
            AggFunc::And,
            AggFunc::Or,
            AggFunc::Union,
            AggFunc::Intersect,
            AggFunc::Avg,
            AggFunc::HalfSum,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn domain_spec_round_trips_names() {
        for d in [
            DomainSpec::MaxReal,
            DomainSpec::MinReal,
            DomainSpec::NonNegReal,
            DomainSpec::BoolOr,
            DomainSpec::BoolAnd,
            DomainSpec::Nat,
            DomainSpec::PosNat,
            DomainSpec::SetUnion,
            DomainSpec::SetIntersect,
        ] {
            assert_eq!(DomainSpec::from_name(d.name()), Some(d));
        }
        assert!(DomainSpec::MinReal.is_reversed());
        assert!(!DomainSpec::MaxReal.is_reversed());
    }
}
