//! Error types for parsing and validation.

use crate::span::Span;
use std::fmt;

/// A source location (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Loc {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse error with location and message. `span` is the byte range of
/// the offending text (dummy when only a point location is known).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub loc: Loc,
    pub span: Span,
    pub message: String,
}

impl ParseError {
    pub fn new(loc: Loc, message: impl Into<String>) -> Self {
        ParseError {
            loc,
            span: Span::DUMMY,
            message: message.into(),
        }
    }

    pub fn with_span(loc: Loc, span: Span, message: impl Into<String>) -> Self {
        ParseError {
            loc,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

/// What a [`ValidateError`] is about, so tooling can map it to a stable
/// lint code without sniffing the message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidateKind {
    /// Inconsistent or undeclared-vs-used arity (Section 2.1 conventions).
    Arity,
    /// A malformed `declare default` item (Section 2.3.2).
    DefaultDecl,
    /// A structurally ill-formed aggregate subgoal (Definition 2.4).
    Aggregate,
}

/// A program-level validation error (arity mismatch, undeclared cost
/// predicate in an aggregate, malformed default declaration, ...), carrying
/// the byte span of the offending declaration, atom, or aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateError {
    pub span: Span,
    pub kind: ValidateKind,
    pub message: String,
}

impl ValidateError {
    pub fn new(span: Span, kind: ValidateKind, message: impl Into<String>) -> Self {
        ValidateError {
            span,
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_location() {
        let e = ParseError::new(Loc { line: 3, col: 7 }, "expected '.'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected '.'");
    }

    #[test]
    fn validate_error_renders_message() {
        let e = ValidateError::new(Span::new(4, 9), ValidateKind::Arity, "arity mismatch for arc");
        assert!(e.to_string().contains("arity mismatch"));
        assert_eq!(e.span, Span::new(4, 9));
    }

    #[test]
    fn parse_error_span_defaults_to_dummy() {
        let e = ParseError::new(Loc { line: 1, col: 1 }, "boom");
        assert!(e.span.is_dummy());
        let e = ParseError::with_span(Loc { line: 1, col: 1 }, Span::new(0, 4), "boom");
        assert_eq!(e.span, Span::new(0, 4));
    }
}
