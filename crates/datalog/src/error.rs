//! Error types for parsing and validation.

use std::fmt;

/// A source location (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Loc {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse error with location and message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub loc: Loc,
    pub message: String,
}

impl ParseError {
    pub fn new(loc: Loc, message: impl Into<String>) -> Self {
        ParseError {
            loc,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A program-level validation error (arity mismatch, undeclared cost
/// predicate in an aggregate, malformed default declaration, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateError {
    pub message: String,
}

impl ValidateError {
    pub fn new(message: impl Into<String>) -> Self {
        ValidateError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_location() {
        let e = ParseError::new(Loc { line: 3, col: 7 }, "expected '.'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected '.'");
    }

    #[test]
    fn validate_error_renders_message() {
        let e = ValidateError::new("arity mismatch for arc");
        assert!(e.to_string().contains("arity mismatch"));
    }
}
