//! String interning.
//!
//! Predicate names, constant symbols, and variable names are interned to
//! `u32` ids so that atoms and tuples compare and hash cheaply during
//! fixpoint evaluation. The table uses interior mutability so that callers
//! holding a shared `&Program` (e.g. while loading EDB facts) can still
//! intern new constants. The interior mutability is an `RwLock` (not a
//! `RefCell`) so a `Program` is `Sync` and can be shared by the parallel
//! evaluator's worker threads; evaluation itself only reads.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// An interned string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

#[derive(Default, Debug)]
struct Inner {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, Sym>,
}

/// An interning table mapping strings to [`Sym`] and back.
#[derive(Default, Debug)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(&sym) = self.inner.read().unwrap().ids.get(name) {
            return sym;
        }
        let mut inner = self.inner.write().unwrap();
        // Re-check under the write lock: another interner may have won the
        // race between our read and write acquisitions.
        if let Some(&sym) = inner.ids.get(name) {
            return sym;
        }
        let sym = Sym(inner.names.len() as u32);
        let boxed: Box<str> = name.into();
        inner.names.push(boxed.clone());
        inner.ids.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.inner.read().unwrap().ids.get(name).copied()
    }

    /// The string for `sym` (owned; the table cannot hand out references
    /// across the lock boundary).
    pub fn name(&self, sym: Sym) -> String {
        self.inner.read().unwrap().names[sym.0 as usize].to_string()
    }

    /// Apply `f` to the interned string without cloning.
    pub fn with_name<R>(&self, sym: Sym, f: impl FnOnce(&str) -> R) -> R {
        f(&self.inner.read().unwrap().names[sym.0 as usize])
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let t = SymbolTable::new();
        let a1 = t.intern("arc");
        let a2 = t.intern("arc");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        let t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn lookup_does_not_intern() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("ghost"), None);
        assert_eq!(t.len(), 0);
        let g = t.intern("ghost");
        assert_eq!(t.lookup("ghost"), Some(g));
    }

    #[test]
    fn with_name_avoids_clone() {
        let t = SymbolTable::new();
        let s = t.intern("hello");
        assert_eq!(t.with_name(s, |n| n.len()), 5);
    }
}
