//! Datalog with monotonic aggregation: syntax and program structure.
//!
//! This crate implements Section 2 of Ross & Sagiv (PODS 1992): the rule
//! language with *cost predicates*, *aggregate subgoals* (both the `=` and
//! the `=r` forms of Definition 2.4), *default-value cost predicates*
//! (Section 2.3.2), *integrity constraints* (Definition 2.9), and the
//! componentwise CDB/LDB view of a program (Section 2.2).
//!
//! The concrete syntax is a conventional Prolog-flavoured notation:
//!
//! ```text
//! declare pred path/4 cost min_real.
//! declare pred t/2 cost bool_or default.
//!
//! path(X, direct, Y, C) :- arc(X, Y, C).
//! path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
//! s(X, Y, C)            :- C =r min D : path(X, Z, Y, D).
//! t(G, C)               :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
//! coming(X)             :- requires(X, K), N = count : kc(X, Y), N >= K.
//! constraint :- arc(direct, Z, C).
//! ```
//!
//! Variables start with an uppercase letter or `_`; constants are lowercase
//! identifiers or numbers; `%` starts a comment. The cost argument of a cost
//! predicate is always its **last** argument, as in the paper's convention.

pub mod ast;
pub mod error;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod symbols;
pub mod validate;

pub use ast::{
    AggEq, AggFunc, Aggregate, Atom, BinOp, Builtin, CmpOp, Const, Constraint, CostSpec,
    DomainSpec, Expr, Literal, Pred, PredDecl, Program, Rule, Term, Var,
};
pub use error::{Loc, ParseError, ValidateError, ValidateKind};
pub use graph::{Component, DepGraph, EdgeKind};
pub use parser::{parse_program, parse_program_raw};
pub use span::{LineIndex, Span};
pub use symbols::{Sym, SymbolTable};
