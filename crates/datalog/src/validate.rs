//! Program-level validation (arity and aggregate well-formedness).
//!
//! These checks are the "is this even a program" layer. The *semantic*
//! checks of the paper — range restriction, cost-respecting rules,
//! conflict-freedom, admissibility — live in `maglog-analysis`.

use crate::ast::*;
use crate::error::{ValidateError, ValidateKind};
use std::collections::HashMap;

/// Validate `program`, checking:
///
/// 1. every predicate is used with one consistent arity, matching its
///    declaration if present;
/// 2. every aggregate subgoal is structurally sound per Definition 2.4:
///    the multiset variable occurs only in cost arguments of cost-predicate
///    conjuncts (and nowhere else in the rule); aggregates without a
///    multiset variable are only the implicit-boolean `count`; the result
///    variable does not occur inside the conjunction;
/// 3. default-value declarations are attached to cost predicates.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut arities: HashMap<Pred, usize> = HashMap::new();
    for decl in program.decls.values() {
        arities.insert(decl.pred, decl.arity);
    }

    let mut check_atom = |program: &Program, atom: &Atom| -> Result<(), ValidateError> {
        match arities.get(&atom.pred) {
            Some(&a) if a != atom.arity() => Err(ValidateError::new(
                atom.span,
                ValidateKind::Arity,
                format!(
                "predicate {}/{} used with arity {}",
                    program.pred_name(atom.pred),
                    a,
                    atom.arity()
                ),
            )),
            Some(_) => Ok(()),
            None => {
                arities.insert(atom.pred, atom.arity());
                Ok(())
            }
        }
    };

    for fact in &program.facts {
        check_atom(program, fact)?;
    }

    let mut all_bodies: Vec<(&[Literal], Option<&Rule>)> = Vec::new();
    for rule in &program.rules {
        check_atom(program, &rule.head)?;
        all_bodies.push((&rule.body, Some(rule)));
    }
    for c in &program.constraints {
        all_bodies.push((&c.body, None));
    }

    for (body, rule) in all_bodies {
        for lit in body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => check_atom(program, a)?,
                Literal::Builtin(_) => {}
                Literal::Agg(agg) => {
                    for a in &agg.conjuncts {
                        check_atom(program, a)?;
                    }
                    validate_aggregate(program, agg, rule)?;
                }
            }
        }
    }

    for decl in program.decls.values() {
        if let Some(cost) = decl.cost {
            if cost.has_default && decl.arity == 0 {
                return Err(ValidateError::new(
                    decl.span,
                    ValidateKind::DefaultDecl,
                    format!(
                        "default-value predicate {} must have at least a cost argument",
                        program.pred_name(decl.pred)
                    ),
                ));
            }
        }
    }

    Ok(())
}

fn validate_aggregate(
    program: &Program,
    agg: &Aggregate,
    rule: Option<&Rule>,
) -> Result<(), ValidateError> {
    let fname = agg.func.name();
    match agg.multiset_var {
        None => {
            if agg.func != AggFunc::Count {
                return Err(ValidateError::new(
                    agg.span,
                    ValidateKind::Aggregate,
                    format!(
                        "aggregate '{fname}' requires a multiset variable \
                         (only 'count' may aggregate an implicit boolean cost)"
                    ),
                ));
            }
        }
        Some(e) => {
            // E must occur in at least one conjunct, only in the final
            // (cost) argument position, and the conjuncts it occurs in must
            // be cost predicates if declared.
            let mut occurrences = 0usize;
            for atom in &agg.conjuncts {
                for (i, term) in atom.args.iter().enumerate() {
                    if *term == Term::Var(e) {
                        occurrences += 1;
                        let is_last = i + 1 == atom.args.len();
                        if !is_last {
                            return Err(ValidateError::new(
                                atom.arg_span(i),
                                ValidateKind::Aggregate,
                                format!(
                                    "multiset variable {} must appear only in cost \
                                     (final) argument positions",
                                    program.var_name(e)
                                ),
                            ));
                        }
                        if let Some(decl) = program.decls.get(&atom.pred) {
                            if decl.cost.is_none() {
                                return Err(ValidateError::new(
                                    atom.arg_span(i),
                                    ValidateKind::Aggregate,
                                    format!(
                                        "multiset variable {} appears in the last argument of \
                                         {}, which is declared without a cost argument",
                                        program.var_name(e),
                                        program.pred_name(atom.pred)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            if occurrences == 0 {
                return Err(ValidateError::new(
                    agg.span,
                    ValidateKind::Aggregate,
                    format!(
                        "multiset variable {} does not occur in the aggregate conjunction",
                        program.var_name(e)
                    ),
                ));
            }
            // E must not occur elsewhere in the rule.
            if let Some(rule) = rule {
                let outside = count_var_uses_outside_aggregates(rule, e);
                if outside > 0 {
                    return Err(ValidateError::new(
                        agg.span,
                        ValidateKind::Aggregate,
                        format!(
                            "multiset variable {} may not occur outside its aggregate subgoal",
                            program.var_name(e)
                        ),
                    ));
                }
            }
            // The result variable must differ from E and from the local
            // variables; we enforce the stronger (and simpler) condition
            // that it does not occur inside the conjunction at all.
            if let Term::Var(c) = agg.result {
                if c == e {
                    return Err(ValidateError::new(
                        agg.span,
                        ValidateKind::Aggregate,
                        format!(
                            "aggregate variable {} must differ from the multiset variable",
                            program.var_name(c)
                        ),
                    ));
                }
                for atom in &agg.conjuncts {
                    if atom.vars().any(|v| v == c) {
                        return Err(ValidateError::new(
                            atom.span,
                            ValidateKind::Aggregate,
                            format!(
                                "aggregate variable {} may not occur inside the aggregated \
                                 conjunction",
                                program.var_name(c)
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Occurrences of `v` in the rule outside aggregate conjunctions and
/// aggregate result positions.
fn count_var_uses_outside_aggregates(rule: &Rule, v: Var) -> usize {
    let mut n = 0usize;
    n += rule.head.vars().filter(|&x| x == v).count();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => n += a.vars().filter(|&x| x == v).count(),
            Literal::Builtin(b) => n += b.vars().into_iter().filter(|&x| x == v).count(),
            Literal::Agg(agg) => {
                if agg.result == Term::Var(v) {
                    n += 1;
                }
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = parse_program("p(a, b).\np(c).").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
    }

    #[test]
    fn declared_arity_is_enforced() {
        let err = parse_program("declare pred p/3.\np(a, b).").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
    }

    #[test]
    fn multiset_var_must_be_in_cost_position() {
        let err =
            parse_program("q(a, 1).\np(C) :- C =r min D : q(D, X).").unwrap_err();
        assert!(err.message.contains("cost"), "{}", err.message);
    }

    #[test]
    fn multiset_var_must_occur_in_conjunction() {
        let err = parse_program("p(C) :- C =r min D : q(X, Y).").unwrap_err();
        assert!(err.message.contains("does not occur"), "{}", err.message);
    }

    #[test]
    fn multiset_var_may_not_leak_outside() {
        let err =
            parse_program("p(C, D) :- C =r min D : q(X, D).").unwrap_err();
        assert!(err.message.contains("outside"), "{}", err.message);
    }

    #[test]
    fn non_count_requires_multiset_var() {
        let err = parse_program("p(C) :- C =r sum : q(X).").unwrap_err();
        assert!(err.message.contains("multiset variable"), "{}", err.message);
    }

    #[test]
    fn count_without_multiset_var_is_fine() {
        assert!(parse_program("p(C) :- C =r count : q(X).").is_ok());
    }

    #[test]
    fn aggregate_var_cannot_appear_inside() {
        let err = parse_program("p(C) :- C =r min D : q(C, D).").unwrap_err();
        assert!(err.message.contains("inside"), "{}", err.message);
    }

    #[test]
    fn aggregate_over_undeclared_noncost_pred_is_rejected() {
        let err = parse_program(
            "declare pred q/2.\np(C) :- C =r min D : q(X, D).",
        )
        .unwrap_err();
        assert!(err.message.contains("without a cost"), "{}", err.message);
    }
}
