//! Range restriction (Definition 2.5).
//!
//! A *limited argument* is a non-cost argument of a predicate with no
//! default declaration. The fixpoint of *limited* variables captures
//! variables guaranteed to range over the finite active domain; the
//! *quasi-limited* variables are cost-domain variables whose values are
//! uniquely determined by limited/quasi-limited ones. Lemma 2.2 then
//! guarantees that bottom-up evaluation only ever builds a finite core and
//! takes aggregates of finite multisets.

use crate::diag::{var_span, Code};
use maglog_datalog::{Aggregate, Atom, CmpOp, Expr, Literal, Program, Rule, Span, Term, Var};
use std::collections::BTreeSet;

/// A range-restriction violation in one rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeIssue {
    /// Index of the rule in `program.rules`.
    pub rule_index: usize,
    /// Which MAG02xx condition failed.
    pub code: Code,
    /// Byte span of the offending variable or subgoal (dummy for
    /// synthesized rules).
    pub span: Span,
    pub message: String,
}

/// Check every rule of the program; empty vector means range-restricted.
pub fn range_restriction_report(program: &Program) -> Vec<RangeIssue> {
    let mut issues = Vec::new();
    for (i, rule) in program.rules.iter().enumerate() {
        for (code, span, message) in rule_issues(program, rule) {
            issues.push(RangeIssue {
                rule_index: i,
                code,
                span: if span.is_dummy() { rule.span } else { span },
                message,
            });
        }
    }
    issues
}

/// Is a single rule range-restricted?
pub fn rule_range_restricted(program: &Program, rule: &Rule) -> bool {
    rule_issues(program, rule).is_empty()
}

/// The set of limited variables of a rule (exposed for the admissibility
/// checker and tests).
pub fn limited_vars(program: &Program, rule: &Rule) -> BTreeSet<Var> {
    fixpoints(program, rule).0
}

/// The set of quasi-limited variables of a rule.
pub fn quasi_limited_vars(program: &Program, rule: &Rule) -> BTreeSet<Var> {
    fixpoints(program, rule).1
}

/// Compute (limited, quasi-limited) variable sets per Definition 2.5.
fn fixpoints(program: &Program, rule: &Rule) -> (BTreeSet<Var>, BTreeSet<Var>) {
    let mut limited: BTreeSet<Var> = BTreeSet::new();
    let mut quasi: BTreeSet<Var> = BTreeSet::new();

    // Seed quasi-limited clause 1 and 2 (they do not depend on the limited
    // fixpoint): cost-argument variables of positive/aggregate-internal
    // atoms, and aggregate result variables.
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => {
                if let Some(Term::Var(v)) = a.cost_arg(program.is_cost_pred(a.pred)) {
                    quasi.insert(*v);
                }
            }
            Literal::Agg(agg) => {
                if let Term::Var(v) = agg.result {
                    quasi.insert(v);
                }
                for a in &agg.conjuncts {
                    if let Some(Term::Var(v)) = a.cost_arg(program.is_cost_pred(a.pred)) {
                        quasi.insert(*v);
                    }
                }
            }
            _ => {}
        }
    }

    // Iterate the mutually dependent clauses to a joint fixpoint.
    let mut changed = true;
    while changed {
        changed = false;

        for (idx, lit) in rule.body.iter().enumerate() {
            match lit {
                Literal::Pos(a) => {
                    for v in limited_arg_vars(program, a) {
                        changed |= limited.insert(v);
                    }
                }
                Literal::Agg(agg) => {
                    // Local variables in limited arguments, and grouping
                    // variables of `=r` aggregates in limited arguments.
                    let locals: BTreeSet<Var> =
                        rule.aggregate_local_vars(idx).into_iter().collect();
                    let groupings: BTreeSet<Var> =
                        rule.aggregate_grouping_vars(idx).into_iter().collect();
                    let restricted = agg.eq == maglog_datalog::AggEq::Restricted;
                    for a in &agg.conjuncts {
                        for v in limited_arg_vars(program, a) {
                            if locals.contains(&v) || (restricted && groupings.contains(&v)) {
                                changed |= limited.insert(v);
                            }
                        }
                    }
                }
                Literal::Builtin(b) => {
                    // Limited clause 4/5: V = Y with Y limited, V = const.
                    if b.op == CmpOp::Eq {
                        changed |= propagate_limited_equality(&b.lhs, &b.rhs, &mut limited);
                        changed |= propagate_limited_equality(&b.rhs, &b.lhs, &mut limited);
                    }
                    // Quasi-limited clause 3: V = E with vars(E) all
                    // limited/quasi-limited.
                    if b.op == CmpOp::Eq {
                        changed |=
                            propagate_quasi_equality(&b.lhs, &b.rhs, &limited, &mut quasi);
                        changed |=
                            propagate_quasi_equality(&b.rhs, &b.lhs, &limited, &mut quasi);
                    }
                }
                Literal::Neg(_) => {}
            }
        }
    }

    (limited, quasi)
}

/// Variables of `atom` in limited argument positions (non-cost arguments of
/// a predicate with no default declaration).
fn limited_arg_vars(program: &Program, atom: &Atom) -> Vec<Var> {
    if program.has_default(atom.pred) {
        return Vec::new();
    }
    atom.key_args(program.is_cost_pred(atom.pred))
        .iter()
        .filter_map(Term::as_var)
        .collect()
}

/// If `target` is a bare variable and `source` is a limited variable or a
/// constant, mark `target` limited. Returns whether anything changed.
fn propagate_limited_equality(
    target: &Expr,
    source: &Expr,
    limited: &mut BTreeSet<Var>,
) -> bool {
    let Some(v) = target.as_var() else {
        return false;
    };
    let source_ok = match source {
        Expr::Term(Term::Var(y)) => limited.contains(y),
        Expr::Term(Term::Const(_)) => true,
        _ => false,
    };
    if source_ok {
        limited.insert(v)
    } else {
        false
    }
}

/// If `target` is a bare variable and every variable of `source` is limited
/// or quasi-limited, mark `target` quasi-limited.
fn propagate_quasi_equality(
    target: &Expr,
    source: &Expr,
    limited: &BTreeSet<Var>,
    quasi: &mut BTreeSet<Var>,
) -> bool {
    let Some(v) = target.as_var() else {
        return false;
    };
    let all_known = source
        .vars()
        .iter()
        .all(|x| limited.contains(x) || quasi.contains(x));
    if all_known {
        quasi.insert(v)
    } else {
        false
    }
}

/// The span of `v`'s first occurrence inside an aggregate's conjuncts,
/// falling back to the aggregate's own span.
fn var_span_in_agg(agg: &Aggregate, v: Var) -> Span {
    for a in &agg.conjuncts {
        if a.args.contains(&Term::Var(v)) {
            return var_span(a, v);
        }
    }
    agg.span
}

fn rule_issues(program: &Program, rule: &Rule) -> Vec<(Code, Span, String)> {
    let (limited, quasi) = fixpoints(program, rule);
    let known = |v: &Var| limited.contains(v) || quasi.contains(v);
    let mut issues = Vec::new();
    let name = |v: &Var| program.var_name(*v);

    for (idx, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Neg(a) => {
                let has_cost = program.is_cost_pred(a.pred);
                for t in a.key_args(has_cost) {
                    if let Term::Var(v) = t {
                        if !limited.contains(v) {
                            issues.push((
                                Code::RangeNegated,
                                var_span(a, *v),
                                format!(
                                    "negated subgoal {} has non-limited variable {}",
                                    program.display_atom(a),
                                    name(v)
                                ),
                            ));
                        }
                    }
                }
                if let Some(Term::Var(v)) = a.cost_arg(has_cost) {
                    if !known(v) {
                        issues.push((
                            Code::RangeNegated,
                            var_span(a, *v),
                            format!(
                                "negated subgoal {} has non-quasi-limited cost variable {}",
                                program.display_atom(a),
                                name(v)
                            ),
                        ));
                    }
                }
            }
            Literal::Pos(a) => {
                if program.has_default(a.pred) {
                    for t in a.key_args(true) {
                        if let Term::Var(v) = t {
                            if !limited.contains(v) {
                                issues.push((
                                    Code::RangeDefault,
                                    var_span(a, *v),
                                    format!(
                                        "default-value subgoal {} has non-limited variable {}",
                                        program.display_atom(a),
                                        name(v)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Literal::Agg(agg) => {
                for v in rule.aggregate_grouping_vars(idx) {
                    if !limited.contains(&v) {
                        issues.push((
                            Code::RangeAggregate,
                            var_span_in_agg(agg, v),
                            format!(
                                "aggregate grouping variable {} is not limited",
                                name(&v)
                            ),
                        ));
                    }
                }
                for v in rule.aggregate_local_vars(idx) {
                    // Only local variables appearing in *non-cost* positions
                    // must be limited.
                    let in_noncost = agg.conjuncts.iter().any(|a| {
                        a.key_args(program.is_cost_pred(a.pred)).contains(&Term::Var(v))
                    });
                    if in_noncost && !limited.contains(&v) {
                        issues.push((
                            Code::RangeAggregate,
                            var_span_in_agg(agg, v),
                            format!(
                                "aggregate local variable {} is not limited",
                                name(&v)
                            ),
                        ));
                    }
                }
                // Default-value predicates inside aggregates: non-cost
                // arguments must be limited.
                for a in &agg.conjuncts {
                    if program.has_default(a.pred) {
                        for t in a.key_args(true) {
                            if let Term::Var(v) = t {
                                if !limited.contains(v) {
                                    issues.push((
                                        Code::RangeDefault,
                                        var_span(a, *v),
                                        format!(
                                            "default-value conjunct {} has non-limited variable {}",
                                            program.display_atom(a),
                                            name(v)
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            Literal::Builtin(b) => {
                for v in b.vars() {
                    if !known(&v) {
                        issues.push((
                            Code::RangeBuiltin,
                            b.span,
                            format!(
                                "built-in subgoal variable {} is neither limited nor quasi-limited",
                                name(&v)
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Head conditions.
    let has_cost = program.is_cost_pred(rule.head.pred);
    for t in rule.head.key_args(has_cost) {
        if let Term::Var(v) = t {
            if !limited.contains(v) {
                issues.push((
                    Code::RangeHead,
                    var_span(&rule.head, *v),
                    format!(
                        "head variable {} (non-cost position) is not limited",
                        name(v)
                    ),
                ));
            }
        }
    }
    if let Some(Term::Var(v)) = rule.head.cost_arg(has_cost) {
        if !known(v) {
            issues.push((
                Code::RangeHead,
                var_span(&rule.head, *v),
                format!(
                    "head cost variable {} is not quasi-limited",
                    name(v)
                ),
            ));
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn assert_rr(src: &str) {
        let p = parse_program(src).unwrap();
        let issues = range_restriction_report(&p);
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    fn assert_not_rr(src: &str, needle: &str) {
        let p = parse_program(src).unwrap();
        let issues = range_restriction_report(&p);
        assert!(
            issues.iter().any(|i| i.message.contains(needle)),
            "expected an issue containing '{needle}', got {issues:?}"
        );
    }

    #[test]
    fn example_2_2_positive_cases() {
        // alt-class-count with a restricting record subgoal.
        assert_rr(
            r#"
            declare pred record/3 cost max_real.
            declare pred alt_class_count/2 cost nat.
            alt_class_count(C, N) :- record(X, C, Y), N = count : record(S, C, G).
            "#,
        );
        // Circuit AND rule: G limited by gate, W limited by connect.
        assert_rr(
            r#"
            declare pred t/2 cost bool_or default.
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#,
        );
        // s rule via =r aggregate: grouping vars limited inside.
        assert_rr(
            r#"
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            "#,
        );
    }

    #[test]
    fn example_2_2_negative_cases() {
        // `=` aggregate does not limit its grouping variable.
        assert_not_rr(
            r#"
            declare pred record/3 cost max_real.
            declare pred alt_class_count/2 cost nat.
            alt_class_count(C, N) :- N = count : record(S, C, G).
            "#,
            "not limited",
        );
        // Default-value predicate t does not limit its non-cost argument.
        assert_not_rr(
            r#"
            declare pred t/3 cost bool_or default.
            declare pred out/3 cost bool_or.
            out(G, and, C) :- gate(G, and), C = and D : [connect(G, W), t(W, X, D)].
            "#,
            "not limited",
        );
        // `=` min aggregate: X and Y unlimited.
        assert_not_rr(
            r#"
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            s(X, Y, C) :- C = min D : path(X, Z, Y, D).
            "#,
            "not limited",
        );
    }

    #[test]
    fn builtin_equality_propagates_limitedness() {
        assert_rr("p(Y) :- q(X), Y = X.");
        assert_rr("p(Y) :- Y = a.");
        assert_not_rr("p(Y) :- q(X), Y = X + 1.", "not limited");
    }

    #[test]
    fn arithmetic_gives_quasi_limited_cost() {
        assert_rr(
            r#"
            declare pred s/3 cost min_real.
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            "#,
        );
    }

    #[test]
    fn negation_needs_limited_vars() {
        assert_rr("p(X) :- q(X), ! r(X).");
        assert_not_rr("p(X) :- q(X), ! r(X, Y).", "non-limited");
    }

    #[test]
    fn head_var_must_be_limited() {
        assert_not_rr("p(X, Y) :- q(X).", "not limited");
    }

    #[test]
    fn free_builtin_variable_is_flagged() {
        assert_not_rr("p(X) :- q(X), Y < 3.", "neither limited nor quasi-limited");
    }

    #[test]
    fn quasi_limited_from_chained_arithmetic() {
        assert_rr(
            r#"
            declare pred q/2 cost max_real.
            declare pred p/2 cost max_real.
            p(X, C) :- q(X, A), B = A + 1, C = B * 2.
            "#,
        );
    }

    #[test]
    fn fact_like_rule_with_vars_is_rejected() {
        assert_not_rr("p(X).", "not limited");
    }
}
