//! Binding-pattern / magic-set style demand analysis for ground-head point
//! queries, driven off the dependency graph.
//!
//! A point query `s(a, b)?` does not need the whole least model — only the
//! **derivation cone** of `s` (the predicates `s` transitively depends on)
//! and, within `s`'s own recursive component, only the tuples that carry
//! the queried constant. The analysis here proves when that restriction is
//! sound:
//!
//! A key position `j` of a component predicate `g` admits a **uniform
//! stable binding** when there is an assignment `pos(p)` of one key
//! position to every predicate of the component, with `pos(g) = j`, such
//! that for *every* rule of the component
//!
//! * the head's term at `pos(head)` is a variable `v`, and
//! * every component-predicate occurrence in the body (positive, negated,
//!   or an aggregate conjunct) carries exactly `v` at its assigned
//!   position.
//!
//! Then every tuple in a derivation tree of a `g`-tuple with constant `a`
//! at position `j` itself carries `a` at its predicate's assigned position
//! (induction down the tree), so seeding `v := a` into every rule of the
//! component derives precisely the cone of the query — including complete
//! aggregate groups, because the bound variable is necessarily a grouping
//! variable of any aggregate it reaches. The engine's `--optimize=demand`
//! mode uses [`uniform_binding`] to build exactly that seeding, and skips
//! components disjoint from [`derivation_cone`] altogether.

use maglog_datalog::{
    graph::{components, Component, DepGraph},
    Atom, Literal, Pred, Program, Term, Var,
};
use std::collections::{BTreeMap, BTreeSet};

/// Demand verdict for one program component, index-aligned with
/// [`maglog_datalog::graph::components`].
#[derive(Clone, Debug)]
pub struct ComponentDemand {
    /// Predicates of the component (its CDB).
    pub preds: BTreeSet<Pred>,
    /// Rule indices (into `program.rules`).
    pub rule_indices: Vec<usize>,
    /// Is the component actually recursive (some body references a
    /// component predicate)? Non-recursive components evaluate in one
    /// round and are not demand candidates.
    pub recursive: bool,
    /// Key positions admitting a uniform stable binding, as
    /// `(pred, position)` pairs in predicate order.
    pub supported: Vec<(Pred, usize)>,
}

impl ComponentDemand {
    /// May a point query on some position of this component be restricted?
    pub fn restrictable(&self) -> bool {
        self.recursive && !self.supported.is_empty()
    }
}

/// The demand verdict for every component of the program.
pub fn demand_report(program: &Program) -> Vec<ComponentDemand> {
    components(program)
        .iter()
        .map(|comp| {
            let recursive = is_recursive(program, comp);
            let mut supported = Vec::new();
            if recursive {
                for &g in &comp.preds {
                    let keys = key_arity(program, g);
                    for j in 0..keys {
                        if uniform_binding(program, comp, g, j).is_some() {
                            supported.push((g, j));
                        }
                    }
                }
            }
            ComponentDemand {
                preds: comp.preds.clone(),
                rule_indices: comp.rule_indices.clone(),
                recursive,
                supported,
            }
        })
        .collect()
}

/// Number of key (non-cost) argument positions of `p` (arity inferred
/// from a defining rule when `p` is undeclared).
pub fn key_arity(program: &Program, p: Pred) -> usize {
    let arity = program
        .arity(p)
        .or_else(|| {
            program
                .rules
                .iter()
                .find(|r| r.head.pred == p)
                .map(|r| r.head.args.len())
        })
        .unwrap_or(0);
    if program.is_cost_pred(p) {
        arity.saturating_sub(1)
    } else {
        arity
    }
}

fn is_recursive(program: &Program, comp: &Component) -> bool {
    comp.rule_indices.iter().any(|&ri| {
        program.rules[ri].body.iter().any(|lit| match lit {
            Literal::Pos(a) | Literal::Neg(a) => comp.preds.contains(&a.pred),
            Literal::Agg(agg) => agg.conjuncts.iter().any(|a| comp.preds.contains(&a.pred)),
            Literal::Builtin(_) => false,
        })
    })
}

/// Every component-predicate occurrence in a rule body.
fn cdb_occurrences<'r>(rule: &'r maglog_datalog::Rule, cdb: &BTreeSet<Pred>) -> Vec<&'r Atom> {
    let mut out = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                if cdb.contains(&a.pred) {
                    out.push(a);
                }
            }
            Literal::Agg(agg) => {
                out.extend(agg.conjuncts.iter().filter(|a| cdb.contains(&a.pred)));
            }
            Literal::Builtin(_) => {}
        }
    }
    out
}

/// Find a uniform stable binding assignment for binding key position
/// `pos` of `goal` within its component. Returns the per-predicate
/// position assignment, or `None` when no sound assignment exists.
///
/// The assignment is found by worklist propagation from the seed — each
/// unassigned body occurrence adopts the first position carrying the head
/// variable — followed by a verification pass of the full condition over
/// every rule with the completed assignment.
pub fn uniform_binding(
    program: &Program,
    comp: &Component,
    goal: Pred,
    pos: usize,
) -> Option<BTreeMap<Pred, usize>> {
    if !comp.preds.contains(&goal) || pos >= key_arity(program, goal) {
        return None;
    }
    let mut assign: BTreeMap<Pred, usize> = BTreeMap::new();
    assign.insert(goal, pos);

    // Propagate: rules whose head predicate is assigned push an
    // assignment onto every unassigned body occurrence.
    loop {
        let mut changed = false;
        for &ri in &comp.rule_indices {
            let rule = &program.rules[ri];
            let Some(&hpos) = assign.get(&rule.head.pred) else {
                continue;
            };
            let v = head_var_at(program, &rule.head, hpos)?;
            for occ in cdb_occurrences(rule, &comp.preds) {
                if assign.contains_key(&occ.pred) {
                    continue;
                }
                let keys = occ.key_args(program.is_cost_pred(occ.pred));
                let Some(p) = keys.iter().position(|t| *t == Term::Var(v)) else {
                    return None; // the bound variable does not reach this occurrence
                };
                assign.insert(occ.pred, p);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Verify the full condition: every head assigned and a variable, and
    // every occurrence carrying exactly that variable at its position.
    for &ri in &comp.rule_indices {
        let rule = &program.rules[ri];
        let &hpos = assign.get(&rule.head.pred)?;
        let v = head_var_at(program, &rule.head, hpos)?;
        for occ in cdb_occurrences(rule, &comp.preds) {
            let &p = assign.get(&occ.pred)?;
            let keys = occ.key_args(program.is_cost_pred(occ.pred));
            if keys.get(p) != Some(&Term::Var(v)) {
                return None;
            }
        }
    }
    Some(assign)
}

fn head_var_at(program: &Program, head: &Atom, pos: usize) -> Option<Var> {
    head.key_args(program.is_cost_pred(head.pred))
        .get(pos)
        .and_then(|t| t.as_var())
}

/// The derivation cone of `goal`: every predicate it transitively depends
/// on (through positive, negative, and aggregate edges), including itself.
/// Components disjoint from the cone cannot influence the query's answer.
pub fn derivation_cone(program: &Program, goal: Pred) -> BTreeSet<Pred> {
    let graph = DepGraph::build(program);
    let mut cone = BTreeSet::new();
    let mut stack = vec![goal];
    while let Some(p) = stack.pop() {
        if !cone.insert(p) {
            continue;
        }
        if let Some(succ) = graph.edges.get(&p) {
            stack.extend(succ.iter().map(|(q, _)| *q));
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    const SHORTEST_PATH: &str = r#"
        declare pred arc/3 cost min_real.
        declare pred path/4 cost min_real.
        declare pred s/3 cost min_real.
        path(X, direct, Y, C) :- arc(X, Y, C).
        path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
        s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        constraint :- arc(direct, Z, C).
    "#;

    fn pred(p: &Program, name: &str) -> Pred {
        p.find_pred(name).unwrap()
    }

    #[test]
    fn shortest_path_source_position_is_restrictable() {
        let p = parse_program(SHORTEST_PATH).unwrap();
        let comps = components(&p);
        let comp = comps
            .iter()
            .find(|c| c.preds.contains(&pred(&p, "s")))
            .unwrap();
        let assign = uniform_binding(&p, comp, pred(&p, "s"), 0).expect("source is stable");
        assert_eq!(assign.get(&pred(&p, "s")), Some(&0));
        assert_eq!(assign.get(&pred(&p, "path")), Some(&0));
        // The target position is NOT stable: the recursive rule extends
        // paths at the target end, so the bound variable does not reach
        // the s-occurrence.
        assert!(uniform_binding(&p, comp, pred(&p, "s"), 1).is_none());
    }

    #[test]
    fn demand_report_lists_supported_positions() {
        let p = parse_program(SHORTEST_PATH).unwrap();
        let report = demand_report(&p);
        let comp = report.iter().find(|c| c.recursive).unwrap();
        assert!(comp.restrictable());
        let names: Vec<(String, usize)> = comp
            .supported
            .iter()
            .map(|&(q, j)| (p.pred_name(q), j))
            .collect();
        assert!(names.contains(&("s".to_string(), 0)), "{names:?}");
        assert!(names.contains(&("path".to_string(), 0)), "{names:?}");
        assert!(!names.contains(&("s".to_string(), 1)), "{names:?}");
    }

    #[test]
    fn company_control_controller_position_is_restrictable() {
        let p = parse_program(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        )
        .unwrap();
        let report = demand_report(&p);
        let comp = report.iter().find(|c| c.recursive).unwrap();
        let names: Vec<(String, usize)> = comp
            .supported
            .iter()
            .map(|&(q, j)| (p.pred_name(q), j))
            .collect();
        assert!(names.contains(&("c".to_string(), 0)), "{names:?}");
        assert!(names.contains(&("cv".to_string(), 0)), "{names:?}");
        assert!(names.contains(&("m".to_string(), 0)), "{names:?}");
    }

    #[test]
    fn party_admits_no_restriction() {
        // kc swaps the variable between head and body: no stable position.
        let p = parse_program(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        )
        .unwrap();
        let report = demand_report(&p);
        let comp = report.iter().find(|c| c.recursive).unwrap();
        assert!(!comp.restrictable(), "{:?}", comp.supported);
    }

    #[test]
    fn cone_excludes_unrelated_predicates() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred s/3 cost min_real.
            s(X, Y, C) :- arc(X, Y, C).
            unrelated(X) :- other(X).
            "#,
        )
        .unwrap();
        let cone = derivation_cone(&p, pred(&p, "s"));
        assert!(cone.contains(&pred(&p, "s")));
        assert!(cone.contains(&pred(&p, "arc")));
        assert!(!cone.contains(&pred(&p, "unrelated")));
        assert!(!cone.contains(&pred(&p, "other")));
    }
}
