//! Static analyses for monotonic-aggregation programs.
//!
//! This crate implements the paper's syntactic sufficient conditions:
//!
//! * **Range restriction** (Definition 2.5): [`range_restriction`] computes
//!   the limited/quasi-limited variable fixpoints and checks every rule, so
//!   that bottom-up evaluation stays within the finite active domain
//!   (Lemma 2.2).
//! * **Functional-dependency inference** ([`fd`]): attribute-set closure
//!   under Armstrong's axioms, used by the cost-respecting check.
//! * **Cost-respecting rules** (Definition 2.7): [`cost_respect`].
//! * **Containment mappings** (Definition 2.8) and **conflict-freedom**
//!   (Definition 2.10, Lemma 2.3): [`containment`], [`conflict_free`].
//! * **Well-formedness, well-typedness, monotone built-in conjunctions, and
//!   admissibility** (Definitions 4.2–4.5, Lemma 4.1): [`admissible`].
//! * **r-monotonicity** à la Mumick et al. (Section 5.2): [`rmono`].
//! * **Premappability and demand restriction** (the Zaniolo et al. PreM
//!   line of work): [`prem`] proves when an aggregate may be pushed inside
//!   the recursion, [`demand`] when a point query may be restricted to its
//!   derivation cone — both feeding the engine's `--optimize` rewrites and
//!   the `MAG07xx` advisory diagnostics.
//!
//! [`check_program`] runs the full battery and produces an
//! [`AnalysisReport`]; a program whose report says `monotonic` has, by
//! Lemma 4.1 and Lemma 2.3, a monotonic cost-consistent `T_P` and hence a
//! unique least model — which `maglog-engine` then computes.
//!
//! The [`diag`] module turns the battery's findings into span-carrying
//! [`Diagnostic`]s with stable `MAGxxxx` lint codes, configurable
//! severities ([`LintConfig`]), and rustc-style human or JSON renderings
//! ([`render_human`], [`render_json`]); [`check_source`] is the one-call
//! parse → validate → analyze → diagnose entry point used by `maglog
//! check`.

pub mod admissible;
pub mod conflict_free;
pub mod containment;
pub mod cost_respect;
pub mod demand;
pub mod diag;
pub mod fd;
pub mod prem;
pub mod range_restriction;
pub mod report;
pub mod rmono;
pub mod termination;
pub mod unify;

pub use admissible::{admissibility_report, AdmissibilityIssue, ComponentReport};
pub use conflict_free::{conflict_free_report, ConflictIssue, ConflictReport};
pub use demand::{demand_report, derivation_cone, key_arity, uniform_binding, ComponentDemand};
pub use prem::{premappability_report, ComponentPrem, PremRefusal};
pub use diag::{
    check_source, render_human, render_json, report_diagnostics, Code, Diagnostic, LintConfig,
    Severity, SourceCheck,
};
pub use containment::containment_mapping_exists;
pub use cost_respect::is_cost_respecting;
pub use range_restriction::{range_restriction_report, rule_range_restricted, RangeIssue};
pub use report::{check_program, AnalysisReport};
pub use rmono::{is_r_monotonic_rule, r_monotonicity_report};
pub use termination::{termination_report, TerminationVerdict};
