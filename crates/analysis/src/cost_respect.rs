//! Cost-respecting rules (Definition 2.7).
//!
//! A rule whose head has a cost argument is *cost-respecting* if the head's
//! cost variable is functionally determined by the head's non-cost
//! variables, inferable from:
//!
//! 1. the FDs of the body (each cost atom's non-cost arguments determine
//!    its cost argument);
//! 2. the FD "grouping variables → aggregate variable" for each aggregate
//!    subgoal;
//! 3. Armstrong's axioms (via attribute-set closure, [`crate::fd`]).
//!
//! Built-in equalities contribute FDs too: `V = e` makes `vars(e) → V`
//! (and `V → Y` as well when `e` is the single variable `Y`).

use crate::fd::{implies, Fd};
use maglog_datalog::{CmpOp, Expr, Literal, Program, Rule, Term, Var};
use std::collections::BTreeSet;

/// Is `rule` cost-respecting? Rules whose head has no cost argument (or a
/// constant cost) are trivially cost-respecting.
pub fn is_cost_respecting(program: &Program, rule: &Rule) -> bool {
    let has_cost = program.is_cost_pred(rule.head.pred);
    let Some(Term::Var(cost_var)) = rule.head.cost_arg(has_cost) else {
        return true;
    };

    let fds = rule_fds(program, rule);
    let head_key: BTreeSet<Var> = rule
        .head
        .key_args(true)
        .iter()
        .filter_map(Term::as_var)
        .collect();
    let goal: BTreeSet<Var> = [*cost_var].into_iter().collect();
    implies(&fds, &head_key, &goal)
}

/// Extract the functional dependencies visible in a rule body.
pub fn rule_fds(program: &Program, rule: &Rule) -> Vec<Fd> {
    let mut fds = Vec::new();
    for (idx, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Pos(a)
                if program.is_cost_pred(a.pred) => {
                    if let Some(Term::Var(c)) = a.cost_arg(true) {
                        let key: Vec<Var> =
                            a.key_args(true).iter().filter_map(Term::as_var).collect();
                        fds.push(Fd::new(key, [*c]));
                    }
                }
            Literal::Agg(agg) => {
                // Grouping variables determine the aggregate value.
                if let Term::Var(c) = agg.result {
                    let groups = rule.aggregate_grouping_vars(idx);
                    fds.push(Fd::new(groups, [c]));
                }
                // Cost atoms inside the aggregate also carry their FD
                // (usable only through variables visible outside, which the
                // closure handles naturally).
                for a in &agg.conjuncts {
                    if program.is_cost_pred(a.pred) {
                        if let Some(Term::Var(c)) = a.cost_arg(true) {
                            let key: Vec<Var> =
                                a.key_args(true).iter().filter_map(Term::as_var).collect();
                            fds.push(Fd::new(key, [*c]));
                        }
                    }
                }
            }
            Literal::Builtin(b) if b.op == CmpOp::Eq => {
                push_equality_fds(&b.lhs, &b.rhs, &mut fds);
                push_equality_fds(&b.rhs, &b.lhs, &mut fds);
            }
            _ => {}
        }
    }
    fds
}

fn push_equality_fds(target: &Expr, source: &Expr, fds: &mut Vec<Fd>) {
    if let Some(v) = target.as_var() {
        fds.push(Fd::new(source.vars(), [v]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn check(src: &str, expectations: &[bool]) {
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), expectations.len());
        for (rule, &want) in p.rules.iter().zip(expectations) {
            assert_eq!(
                is_cost_respecting(&p, rule),
                want,
                "rule: {}",
                p.display_rule(rule)
            );
        }
    }

    #[test]
    fn example_2_3_violating_rule() {
        // p(X, C) :- q(X, Y, C): C depends on Y, not determined by X.
        check(
            r#"
            declare pred p/2 cost max_real.
            declare pred q/3 cost max_real.
            p(X, C) :- q(X, Y, C).
            "#,
            &[false],
        );
    }

    #[test]
    fn example_2_3_path_rule_respects() {
        check(
            r#"
            declare pred s/3 cost min_real.
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            "#,
            &[true],
        );
    }

    #[test]
    fn example_2_3_min_aggregate_respects() {
        check(
            r#"
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            s(X, Y, C) :- C = min D : path(X, Z, Y, D).
            "#,
            &[true],
        );
    }

    #[test]
    fn paper_path_predicate_needs_the_extra_argument() {
        // Without the intermediate-node argument Z, path's cost is not
        // functionally dependent on the endpoints — the reason the paper
        // added the extra attribute relative to [7].
        check(
            r#"
            declare pred s/3 cost min_real.
            declare pred arc/3 cost min_real.
            declare pred path/3 cost min_real.
            path(X, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            "#,
            &[false],
        );
    }

    #[test]
    fn company_control_rules_respect() {
        check(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
            &[true, true, true, true],
        );
    }

    #[test]
    fn constant_cost_head_is_trivially_respecting() {
        check(
            r#"
            declare pred p/2 cost max_real.
            p(X, C) :- q(X), C = 5.
            "#,
            &[true],
        );
    }

    #[test]
    fn variable_copy_equalities_count() {
        check(
            r#"
            declare pred q/2 cost max_real.
            declare pred p/2 cost max_real.
            p(X, C) :- q(X, D), C = D.
            "#,
            &[true],
        );
    }
}
