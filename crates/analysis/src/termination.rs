//! Termination of bottom-up evaluation (Section 6.2).
//!
//! The paper: the iteration from `J_∅` terminates when the program is
//! function-free and `⊒` is a well-founded ordering on the cost domain —
//! e.g. function-free `min` programs on well-ordered domains, or any
//! monotonic function-free program with finite cost domains. In general
//! `T_P` may need transfinite iteration (Example 5.1).
//!
//! This module implements a conservative, syntactic guarantee based on a
//! **cost-flow graph**: a cost value can grow without bound only if some
//! cost predicate feeds its own cost argument through a *generative*
//! operation (arithmetic `+ - * /`, or the value-generating aggregates
//! `sum`, `product`, `avg`, `halfsum`). Selective operations (copies,
//! `min`/`max` — aggregate or binary —, boolean and set operations, and
//! `count`, whose value is bounded by the finite active domain) can only
//! shuffle values drawn from a finite generated set, so components whose
//! cost-flow cycles are all selective terminate.
//!
//! Verdicts on the paper's programs: shortest path is `Unknown` (the
//! additive cycle `s → path → s`; indeed negative-weight cycles diverge),
//! company control is `Guaranteed` (the `sum` feeds `m` but `m`'s value
//! never flows back into the summed `cv` costs), party/circuit/widest-path
//! are `Guaranteed`.

use maglog_datalog::graph::components;
use maglog_datalog::{AggFunc, BinOp, Expr, Literal, Pred, Program, Rule, Term};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Per-component termination verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationVerdict {
    /// Bottom-up evaluation is guaranteed to reach the fixpoint in
    /// finitely many rounds.
    Guaranteed { reason: String },
    /// No syntactic guarantee; evaluation runs under the round budget.
    Unknown { reason: String },
}

impl TerminationVerdict {
    pub fn is_guaranteed(&self) -> bool {
        matches!(self, TerminationVerdict::Guaranteed { .. })
    }

    pub fn reason(&self) -> &str {
        match self {
            TerminationVerdict::Guaranteed { reason } => reason,
            TerminationVerdict::Unknown { reason } => reason,
        }
    }
}

/// Analyze every component (in dependency order, matching
/// [`maglog_datalog::graph::components`]).
pub fn termination_report(program: &Program) -> Vec<TerminationVerdict> {
    components(program)
        .iter()
        .map(|c| component_verdict(program, &c.preds, &c.rule_indices))
        .collect()
}

fn component_verdict(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule_indices: &[usize],
) -> TerminationVerdict {
    // Non-recursive components: one pass over a finite active domain.
    let recursive = rule_indices.iter().any(|&ri| {
        program.rules[ri].body.iter().any(|lit| match lit {
            Literal::Pos(a) | Literal::Neg(a) => cdb.contains(&a.pred),
            Literal::Agg(agg) => agg.conjuncts.iter().any(|a| cdb.contains(&a.pred)),
            Literal::Builtin(_) => false,
        })
    });
    if !recursive {
        return TerminationVerdict::Guaranteed {
            reason: "non-recursive component (single pass over the finite active domain)"
                .into(),
        };
    }

    // Recursive but cost-free: classic Datalog over the active domain.
    let has_cdb_cost = cdb.iter().any(|p| program.is_cost_pred(*p));
    if !has_cdb_cost {
        return TerminationVerdict::Guaranteed {
            reason: "recursive but cost-free (finite Herbrand base)".into(),
        };
    }

    // Cost-flow graph: src cost pred → head cost pred, labeled generative
    // when the derivation can create new cost values.
    let mut edges: Vec<(Pred, Pred, bool, String)> = Vec::new();
    for &ri in rule_indices {
        let rule = &program.rules[ri];
        if !program.is_cost_pred(rule.head.pred) {
            continue;
        }
        let (sources, generative, witness) = rule_cost_flow(program, cdb, rule);
        for src in sources {
            edges.push((src, rule.head.pred, generative, witness.clone()));
        }
    }

    // Find cost-pred SCCs of the flow graph; an internal generative edge
    // (including self-loops) breaks the guarantee.
    let sccs = flow_sccs(cdb, &edges);
    for (u, v, generative, witness) in &edges {
        if *generative && sccs[u] == sccs[v] {
            return TerminationVerdict::Unknown {
                reason: format!(
                    "cost feedback {} → {} through a generative operation ({witness}); \
                     values may grow without bound (cf. Example 5.1)",
                    program.pred_name(*u),
                    program.pred_name(*v)
                ),
            };
        }
    }
    TerminationVerdict::Guaranteed {
        reason: "every cost-flow cycle is selective: cost values are drawn from a \
                 finite generated set"
            .into(),
    }
}

/// For one rule: the CDB cost predicates whose values flow into the head
/// cost, whether the flow is generative, and a witness description.
fn rule_cost_flow(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule: &Rule,
) -> (BTreeSet<Pred>, bool, String) {
    let mut sources = BTreeSet::new();
    let mut generative = false;
    let mut witness = String::new();

    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                if cdb.contains(&a.pred) && program.is_cost_pred(a.pred) {
                    sources.insert(a.pred);
                }
            }
            Literal::Agg(agg) => {
                let mut cdb_cost_input = false;
                for a in &agg.conjuncts {
                    if cdb.contains(&a.pred) && program.is_cost_pred(a.pred) {
                        sources.insert(a.pred);
                        cdb_cost_input = true;
                    }
                    // Aggregates over *non-cost* CDB predicates (count
                    // style) are bounded by the active domain: no source.
                }
                let value_generating = matches!(
                    agg.func,
                    AggFunc::Sum | AggFunc::Product | AggFunc::Avg | AggFunc::HalfSum
                );
                if cdb_cost_input && value_generating {
                    generative = true;
                    witness = format!("aggregate '{}'", agg.func.name());
                }
            }
            Literal::Builtin(b) => {
                if expr_is_generative(&b.lhs) || expr_is_generative(&b.rhs) {
                    // Conservative: arithmetic anywhere in the rule is
                    // generative when CDB cost inputs exist (checked below).
                    if witness.is_empty() {
                        witness = "arithmetic builtin".into();
                    }
                    generative = true;
                }
            }
        }
    }
    // Arithmetic without CDB cost sources cannot create feedback.
    if sources.is_empty() {
        generative = false;
    }
    (sources, generative, witness)
}

fn expr_is_generative(e: &Expr) -> bool {
    match e {
        Expr::Term(Term::Var(_)) | Expr::Term(Term::Const(_)) => false,
        Expr::Neg(inner) => expr_is_generative(inner),
        Expr::Bin(op, l, r) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => true,
            // min/max only select among existing values.
            BinOp::Min | BinOp::Max => expr_is_generative(l) || expr_is_generative(r),
        },
    }
}

/// SCC ids of the cost-flow graph restricted to the component's cost
/// predicates (simple Kosaraju-style double DFS — the graphs are tiny).
fn flow_sccs(cdb: &BTreeSet<Pred>, edges: &[(Pred, Pred, bool, String)]) -> HashMap<Pred, usize> {
    let nodes: Vec<Pred> = cdb.iter().copied().collect();
    let mut fwd: HashMap<Pred, Vec<Pred>> = HashMap::new();
    let mut back: HashMap<Pred, Vec<Pred>> = HashMap::new();
    for (u, v, _, _) in edges {
        fwd.entry(*u).or_default().push(*v);
        back.entry(*v).or_default().push(*u);
    }
    // Order by finish time.
    let mut visited: HashSet<Pred> = HashSet::new();
    let mut order: Vec<Pred> = Vec::new();
    for &n in &nodes {
        dfs_order(n, &fwd, &mut visited, &mut order);
    }
    // Assign components on the transpose.
    let mut scc: HashMap<Pred, usize> = HashMap::new();
    let mut id = 0;
    for &n in order.iter().rev() {
        if scc.contains_key(&n) {
            continue;
        }
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            if scc.contains_key(&x) {
                continue;
            }
            scc.insert(x, id);
            for &y in back.get(&x).into_iter().flatten() {
                if !scc.contains_key(&y) {
                    stack.push(y);
                }
            }
        }
        id += 1;
    }
    scc
}

fn dfs_order(
    n: Pred,
    fwd: &HashMap<Pred, Vec<Pred>>,
    visited: &mut HashSet<Pred>,
    order: &mut Vec<Pred>,
) {
    if !visited.insert(n) {
        return;
    }
    for &m in fwd.get(&n).into_iter().flatten() {
        dfs_order(m, fwd, visited, order);
    }
    order.push(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn verdicts(src: &str) -> Vec<TerminationVerdict> {
        termination_report(&parse_program(src).unwrap())
    }

    fn all_guaranteed(src: &str) -> bool {
        verdicts(src).iter().all(TerminationVerdict::is_guaranteed)
    }

    #[test]
    fn shortest_path_is_unknown_due_to_additive_cycle() {
        let vs = verdicts(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            "#,
        );
        assert_eq!(vs.len(), 1);
        assert!(!vs[0].is_guaranteed());
        assert!(vs[0].reason().contains("generative"), "{}", vs[0].reason());
    }

    #[test]
    fn company_control_is_guaranteed() {
        // The sum feeds m, but m's value never flows back into cv's costs
        // (cv copies from the LDB relation s).
        assert!(all_guaranteed(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#
        ));
    }

    #[test]
    fn party_is_guaranteed() {
        assert!(all_guaranteed(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#
        ));
    }

    #[test]
    fn circuit_is_guaranteed() {
        assert!(all_guaranteed(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#
        ));
    }

    #[test]
    fn widest_path_is_guaranteed() {
        // min(·,·) and max are selective: values come from the finite set
        // of link capacities.
        assert!(all_guaranteed(
            r#"
            declare pred link/3 cost max_real.
            declare pred wpath/4 cost max_real.
            declare pred w/3 cost max_real.
            wpath(X, direct, Y, C) :- link(X, Y, C).
            wpath(X, Z, Y, C) :- w(X, Z, C1), link(Z, Y, C2), C = min(C1, C2).
            w(X, Y, C) :- C =r max D : wpath(X, Z, Y, D).
            "#
        ));
    }

    #[test]
    fn halfsum_is_unknown() {
        let vs = verdicts(
            r#"
            declare pred p/2 cost nonneg_real.
            p(a, C) :- C =r halfsum D : p(X, D).
            "#,
        );
        assert!(!vs[0].is_guaranteed());
        assert!(vs[0].reason().contains("halfsum"));
    }

    #[test]
    fn plain_transitive_closure_is_guaranteed() {
        assert!(all_guaranteed(
            "tc(X, Y) :- e(X, Y).\ntc(X, Y) :- tc(X, Z), e(Z, Y)."
        ));
    }

    #[test]
    fn non_recursive_aggregation_is_guaranteed() {
        assert!(all_guaranteed(
            r#"
            declare pred record/3 cost max_real.
            declare pred s_avg/2 cost max_real.
            s_avg(S, G) :- G =r avg G2 : record(S, C, G2).
            "#
        ));
    }

    #[test]
    fn counting_upward_is_unknown() {
        // p(X, C) :- p(Y, C1), e(Y, X), C = C1 + 1: the classic diverger.
        let vs = verdicts(
            r#"
            declare pred p/2 cost max_real.
            p(X, C) :- p(Y, C1), e(Y, X), C = C1 + 1.
            "#,
        );
        assert!(!vs[0].is_guaranteed());
    }
}
