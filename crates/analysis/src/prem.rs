//! Premappability (PreM) analysis: may the aggregate of a recursive
//! component be pushed *inside* the recursion?
//!
//! Ross & Sagiv's semantics evaluates the full fixpoint, joining every
//! derivation into the model. Zaniolo et al. (the arXiv:1910.08888 line of
//! work) observe that when the aggregate is the *join-fold* of its cost
//! domain and every recursive rule applies a translation that distributes
//! over that join, the constraint is **premappable**: applying it early —
//! discarding derivations already dominated by the model — cannot change
//! the least fixpoint, and turns compute-all-then-aggregate into a
//! Dijkstra-like pruned search.
//!
//! The proof obligations checked here, per recursive-aggregation component:
//!
//! 1. **Join-fold aggregate.** Every recursive aggregate is the fold of the
//!    head domain's join (`min` over `min_real`, `max` over `max_real`, …)
//!    with restricted equality (`=r`), so late or missing dominated
//!    elements never change the result (`fold(S ∪ {d}) = fold(S) ⊔ d`, the
//!    [`maglog_lattice::laws::check_fold_insert`] law).
//! 2. **Pure fold shape.** The aggregate has a single conjunct over the
//!    same domain, and its result variable is exactly the head cost
//!    argument, used nowhere else — the rule only re-groups cost values.
//! 3. **Distributive translations.** The component's cost domain is a
//!    chain (totally ordered), so the admissibility direction analysis —
//!    which proves every rule's cost expression weakly monotone in the
//!    component cost variable — implies the translation distributes over
//!    the join (`f(a ⊔ b) = f(a) ⊔ f(b)`, the
//!    [`maglog_lattice::laws::check_join_distributive`] law; monotone
//!    unary maps distribute over `min`/`max` on a chain).
//! 4. **Linear recursion.** Every rule body references the component at
//!    most once, so a derivation's cost is a single translation chain and
//!    dominance is preserved link by link.
//! 5. **Admissibility.** The component passes the Definition 4.5 battery;
//!    in particular it is conflict-free, so eagerly discarding dominated
//!    derivations commutes with the engine's cost-consistency bookkeeping.
//!
//! A component that passes gets [`ComponentPrem::premappable`]` == true`
//! and the engine's `--optimize=prem` mode prunes dominated derivations at
//! emit time; every failed obligation is reported as a [`PremRefusal`] and
//! surfaced as a `MAG0702` diagnostic.

use crate::admissible::ComponentReport;
use maglog_datalog::{
    graph::components, AggEq, AggFunc, Aggregate, DomainSpec, Expr, Literal, Pred, Program, Rule,
    Span, Term, Var,
};
use std::collections::BTreeSet;

/// Why an aggregate pushdown was refused for one rule (or the component).
#[derive(Clone, Debug, PartialEq)]
pub struct PremRefusal {
    /// Index into `program.rules`.
    pub rule_index: usize,
    /// Byte span of the offending aggregate, subgoal, or rule.
    pub span: Span,
    pub reason: String,
}

/// The premappability verdict for one program component, index-aligned
/// with [`maglog_datalog::graph::components`].
#[derive(Clone, Debug)]
pub struct ComponentPrem {
    /// Predicates of the component (its CDB).
    pub preds: BTreeSet<Pred>,
    /// Rule indices (into `program.rules`).
    pub rule_indices: Vec<usize>,
    /// Does the component recurse through aggregation at all? Components
    /// that don't are trivially not candidates (nothing to push).
    pub recursive_aggregation: bool,
    /// Rules whose recursive aggregate is the pushable join-fold.
    pub agg_rules: Vec<usize>,
    /// Every failed proof obligation; empty (with
    /// `recursive_aggregation`) means the pushdown is proven sound.
    pub refusals: Vec<PremRefusal>,
}

impl ComponentPrem {
    /// Is the aggregate pushdown proven sound for this component?
    pub fn premappable(&self) -> bool {
        self.recursive_aggregation && self.refusals.is_empty()
    }
}

/// Is `func` the join-fold of `domain`? Mirrors the engine's relaxation
/// eligibility: folding the aggregate over a multiset is then the same as
/// joining its elements in the lattice.
pub fn is_join_fold(func: AggFunc, domain: DomainSpec) -> bool {
    use DomainSpec::*;
    matches!(
        (func, domain),
        (AggFunc::Min, MinReal)
            | (AggFunc::Max, MaxReal | NonNegReal | Nat)
            | (AggFunc::Or, BoolOr)
            | (AggFunc::And, BoolAnd)
            | (AggFunc::Union, SetUnion)
            | (AggFunc::Intersect, SetIntersect)
    )
}

/// Is the domain totally ordered? On a chain, any translation proven
/// weakly monotone by the admissibility direction analysis distributes
/// over the join (which is `min` or `max` of the two arguments); the
/// set-valued domains are genuine partial orders where that implication
/// fails, so they are excluded from pushdown.
fn is_chain(domain: DomainSpec) -> bool {
    !matches!(domain, DomainSpec::SetUnion | DomainSpec::SetIntersect)
}

/// Check premappability of every component. `admissibility` must be the
/// index-aligned output of [`crate::admissible::admissibility_report`] for
/// the same program (as stored in [`crate::AnalysisReport::components`]).
pub fn premappability_report(
    program: &Program,
    admissibility: &[ComponentReport],
) -> Vec<ComponentPrem> {
    components(program)
        .iter()
        .enumerate()
        .map(|(ci, comp)| {
            let mut out = ComponentPrem {
                preds: comp.preds.clone(),
                rule_indices: comp.rule_indices.clone(),
                recursive_aggregation: comp.recursive_aggregation,
                agg_rules: Vec::new(),
                refusals: Vec::new(),
            };
            if !comp.recursive_aggregation {
                return out;
            }
            check_component(program, &comp.preds, &comp.rule_indices, &mut out);
            if let Some(rep) = admissibility.get(ci) {
                if !rep.admissible() {
                    out.refusals.push(PremRefusal {
                        rule_index: *comp.rule_indices.first().unwrap_or(&0),
                        span: comp
                            .rule_indices
                            .first()
                            .map(|&i| program.rules[i].span)
                            .unwrap_or_default(),
                        reason: "the component is not admissible, so the engine cannot \
                                 certify the fixpoint the pushdown must preserve"
                            .to_string(),
                    });
                }
            }
            out
        })
        .collect()
}

fn check_component(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule_indices: &[usize],
    out: &mut ComponentPrem,
) {
    for &ri in rule_indices {
        let rule = &program.rules[ri];
        let refuse = |span: Span, reason: String| PremRefusal {
            rule_index: ri,
            span,
            reason,
        };

        // Obligation 4: linear recursion (at most one CDB reference per
        // body) and no recursion through negation.
        let mut cdb_refs = 0usize;
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) => {
                    if cdb.contains(&a.pred) {
                        cdb_refs += 1;
                    }
                }
                Literal::Neg(a) => {
                    if cdb.contains(&a.pred) {
                        out.refusals.push(refuse(
                            a.span,
                            format!(
                                "recursion negates component predicate {}",
                                program.pred_name(a.pred)
                            ),
                        ));
                    }
                }
                Literal::Agg(agg) => {
                    cdb_refs += agg
                        .conjuncts
                        .iter()
                        .filter(|a| cdb.contains(&a.pred))
                        .count();
                }
                Literal::Builtin(_) => {}
            }
        }
        if cdb_refs > 1 {
            out.refusals.push(refuse(
                rule.span,
                format!(
                    "non-linear recursion: the body references the component {cdb_refs} \
                     times, so a derivation's cost is not a single translation chain"
                ),
            ));
        }

        // Obligations 1–3 on every recursive aggregate of the rule.
        for lit in &rule.body {
            let Literal::Agg(agg) = lit else { continue };
            if !agg.conjuncts.iter().any(|a| cdb.contains(&a.pred)) {
                continue; // LDB aggregate: runs over a fixed relation.
            }
            match check_aggregate(program, rule, agg) {
                Ok(()) => out.agg_rules.push(ri),
                Err(reason) => out.refusals.push(refuse(agg.span, reason)),
            }
        }
    }
}

/// Obligations 1–3 for one recursive aggregate.
fn check_aggregate(program: &Program, rule: &Rule, agg: &Aggregate) -> Result<(), String> {
    let head_spec = program
        .cost_spec(rule.head.pred)
        .ok_or_else(|| {
            format!(
                "head predicate {} has no declared cost domain to push into",
                program.pred_name(rule.head.pred)
            )
        })?;

    if agg.eq != AggEq::Restricted {
        return Err(format!(
            "total-equality aggregate '{} =' is defined only on the complete group, \
             so partial folds cannot be applied early (use `=r` for join-folds)",
            agg.func.name()
        ));
    }
    if !is_join_fold(agg.func, head_spec.domain) {
        return Err(format!(
            "aggregate '{}' is not the join of domain {} — its fold is changed by \
             dominated elements, so it cannot be applied early",
            agg.func.name(),
            head_spec.domain.name()
        ));
    }
    if !is_chain(head_spec.domain) {
        return Err(format!(
            "domain {} is not totally ordered: monotone translations need not \
             distribute over its join",
            head_spec.domain.name()
        ));
    }

    let [conjunct] = agg.conjuncts.as_slice() else {
        return Err(format!(
            "the aggregate ranges over {} conjuncts; pushdown is proven only for a \
             single re-grouped predicate",
            agg.conjuncts.len()
        ));
    };
    let conj_domain = program.cost_spec(conjunct.pred).map(|c| c.domain);
    if conj_domain != Some(head_spec.domain) {
        return Err(format!(
            "the aggregated predicate {} is not over the head domain {}",
            program.pred_name(conjunct.pred),
            head_spec.domain.name()
        ));
    }

    // Obligation 2: the result variable is exactly the head cost argument
    // and occurs nowhere else, so the rule is a pure re-grouping fold.
    let Some(result) = agg.result.as_var() else {
        return Err("the aggregate result is a constant, not a foldable variable".to_string());
    };
    if rule.head.cost_arg(true) != Some(&Term::Var(result)) {
        return Err(format!(
            "the aggregate result {} is not the head cost argument, so the head \
             applies a further transformation the proof does not cover",
            program.var_name(result)
        ));
    }
    if rule.head.key_args(true).contains(&Term::Var(result)) {
        return Err(format!(
            "the aggregate result {} also occurs in a head key position",
            program.var_name(result)
        ));
    }
    if result_used_elsewhere(rule, agg, result) {
        return Err(format!(
            "the aggregate result {} is consumed by another subgoal, which may \
             observe intermediate folds",
            program.var_name(result)
        ));
    }
    Ok(())
}

/// Does `result` occur in any body literal other than as `agg`'s result?
fn result_used_elsewhere(rule: &Rule, agg: &Aggregate, result: Var) -> bool {
    let expr_uses = |e: &Expr| e.vars().contains(&result);
    rule.body.iter().any(|lit| match lit {
        Literal::Pos(a) | Literal::Neg(a) => a.vars().any(|v| v == result),
        Literal::Builtin(b) => expr_uses(&b.lhs) || expr_uses(&b.rhs),
        Literal::Agg(other) => {
            if std::ptr::eq(other, agg) {
                // Within the aggregate itself the result may not leak into
                // the conjunction (it would observe intermediate folds).
                other.conjuncts.iter().any(|a| a.vars().any(|v| v == result))
            } else {
                other.result == Term::Var(result)
                    || other.inner_vars().contains(&result)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admissible::admissibility_report;
    use maglog_datalog::parse_program;

    fn report(src: &str) -> Vec<ComponentPrem> {
        let p = parse_program(src).unwrap();
        let adm = admissibility_report(&p);
        premappability_report(&p, &adm)
    }

    const SHORTEST_PATH: &str = r#"
        declare pred arc/3 cost min_real.
        declare pred path/4 cost min_real.
        declare pred s/3 cost min_real.
        path(X, direct, Y, C) :- arc(X, Y, C).
        path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
        s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        constraint :- arc(direct, Z, C).
    "#;

    #[test]
    fn shortest_path_is_premappable() {
        let r = report(SHORTEST_PATH);
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(comp.premappable(), "{:?}", comp.refusals);
        assert_eq!(comp.agg_rules.len(), 1);
    }

    #[test]
    fn widest_path_max_fold_is_premappable() {
        let r = report(
            r#"
            declare pred arc/3 cost max_real.
            declare pred path/4 cost max_real.
            declare pred s/3 cost max_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = min(C1, C2).
            s(X, Y, C) :- C =r max D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        );
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(comp.premappable(), "{:?}", comp.refusals);
    }

    #[test]
    fn sum_aggregate_is_refused_as_non_join_fold() {
        // Company control: sum over nonneg_real is monotone but not the
        // domain's join (max); dominated elements change the fold.
        let r = report(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        );
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(!comp.premappable());
        assert!(
            comp.refusals
                .iter()
                .any(|x| x.reason.contains("not the join")),
            "{:?}",
            comp.refusals
        );
    }

    #[test]
    fn non_linear_recursion_is_refused() {
        // Two CDB references in one body: cost is a tree, not a chain.
        let r = report(
            r#"
            declare pred p/3 cost min_real.
            declare pred q/3 cost min_real.
            p(X, Y, C) :- e(X, Y, C).
            p(X, Y, C) :- q(X, Z, C1), q(Z, Y, C2), C = C1 + C2.
            q(X, Y, C) :- C =r min D : p(X, Z, D).
            "#,
        );
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(!comp.premappable());
        assert!(
            comp.refusals
                .iter()
                .any(|x| x.reason.contains("non-linear recursion")),
            "{:?}",
            comp.refusals
        );
    }

    #[test]
    fn total_equality_aggregate_is_refused() {
        let r = report(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            "#,
        );
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(!comp.premappable());
        assert!(
            comp.refusals
                .iter()
                .any(|x| x.reason.contains("total-equality")),
            "{:?}",
            comp.refusals
        );
    }

    #[test]
    fn leaked_result_variable_is_refused() {
        let r = report(
            r#"
            declare pred p/3 cost min_real.
            declare pred s/3 cost min_real.
            p(X, Y, C) :- e(X, Y, C).
            p(X, Y, C) :- s(X, Z, C1), e(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : p(X, Y, D), bound(B), C <= B.
            "#,
        );
        let comp = r
            .iter()
            .find(|c| c.recursive_aggregation)
            .expect("recursive component");
        assert!(!comp.premappable());
        assert!(
            comp.refusals
                .iter()
                .any(|x| x.reason.contains("consumed by another subgoal")),
            "{:?}",
            comp.refusals
        );
    }

    #[test]
    fn non_recursive_components_are_not_candidates() {
        let r = report("tc(X, Y) :- e(X, Y).\ntc(X, Y) :- tc(X, Z), e(Z, Y).");
        assert!(r.iter().all(|c| !c.premappable() && c.refusals.is_empty()));
    }
}
