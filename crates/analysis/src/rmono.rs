//! r-monotonicity (Section 5.2; Mumick, Pirahesh & Ramakrishnan).
//!
//! Definition 5.1: a rule is *r-monotonic* if adding tuples to the
//! relations of its ordinary or aggregate subgoals can only add head tuples
//! — no earlier deduction may be invalidated, regardless of the other
//! relations. The paper's class of monotonic programs *properly contains*
//! the r-monotonic ones; the judgments we must reproduce are:
//!
//! * the company-control rule `m(X,Y,N) :- N =r sum M : cv(X,Z,Y,M)` is
//!   **not** r-monotonic (the aggregate result appears in the head);
//! * the merged rule `c(X,Y) :- N =r sum M : cv(X,Z,Y,M), N > 0.5` **is**
//!   r-monotonic (the aggregate result only feeds a threshold test against
//!   a constant that growing multisets can only help);
//! * the shortest-path program is not r-monotonic (the min is part of `s`);
//! * the party program (Example 4.3) is not r-monotonic "due to the
//!   nonmonotonicity in K": the threshold is a *variable* from another
//!   relation, so the syntactic r-monotonicity test cannot admit it.

use maglog_datalog::{AggFunc, CmpOp, Expr, Literal, Program, Rule, Term, Var};

/// Direction of an aggregate's value as its input multiset grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GrowthDir {
    Up,
    Down,
    Unknown,
}

fn growth_direction(func: AggFunc) -> GrowthDir {
    match func {
        AggFunc::Max
        | AggFunc::Sum
        | AggFunc::Count
        | AggFunc::Product
        | AggFunc::Or
        | AggFunc::Union
        | AggFunc::HalfSum => GrowthDir::Up,
        AggFunc::Min | AggFunc::And | AggFunc::Intersect => GrowthDir::Down,
        AggFunc::Avg => GrowthDir::Unknown,
    }
}

/// Is a single rule r-monotonic?
pub fn is_r_monotonic_rule(program: &Program, rule: &Rule) -> bool {
    rule_issue(program, rule).is_none()
}

/// Why a rule fails r-monotonicity (None = r-monotonic).
pub fn rule_issue(program: &Program, rule: &Rule) -> Option<String> {
    for lit in &rule.body {
        if let Literal::Neg(a) = lit {
            return Some(format!(
                "negative subgoal {} can be invalidated by new tuples",
                program.display_atom(a)
            ));
        }
    }
    // Aggregate results may only flow into constant-threshold guards that
    // monotonically improve as the multiset grows.
    for lit in &rule.body {
        let Literal::Agg(agg) = lit else { continue };
        let Term::Var(result) = agg.result else {
            return Some("constant aggregate result is a nonmonotonic test".into());
        };
        // Does the result appear in the head?
        if rule.head.vars().any(|v| v == result) {
            return Some(format!(
                "aggregate result {} appears in the head; replacements of \
                 aggregate tuples invalidate prior deductions",
                program.var_name(result)
            ));
        }
        // Every use in a builtin must be an upward-closed constant guard.
        let dir = growth_direction(agg.func);
        for other in &rule.body {
            let Literal::Builtin(b) = other else { continue };
            let uses = b.vars().iter().filter(|&&v| v == result).count();
            if uses == 0 {
                continue;
            }
            if !guard_is_upward_closed(b, result, dir) {
                return Some(format!(
                    "aggregate result {} is used in {} which is not an \
                     upward-closed constant guard",
                    program.var_name(result),
                    program.display_literal(other)
                ));
            }
        }
    }
    None
}

/// Is `b` of the form `result OP const` (or flipped) with OP preserved as
/// the aggregate grows in direction `dir`?
fn guard_is_upward_closed(b: &maglog_datalog::Builtin, result: Var, dir: GrowthDir) -> bool {
    let (op, other) = match (b.lhs.as_var(), b.rhs.as_var()) {
        (Some(v), _) if v == result => (b.op, &b.rhs),
        (_, Some(v)) if v == result => (b.op.flip(), &b.lhs),
        _ => return false,
    };
    // The other side must be a literal constant — Mumick et al.'s syntactic
    // class does not admit variable thresholds (the paper's Example 4.3
    // verdict).
    if !matches!(other, Expr::Term(Term::Const(_))) {
        return false;
    }
    match dir {
        GrowthDir::Up => matches!(op, CmpOp::Gt | CmpOp::Ge | CmpOp::Ne),
        GrowthDir::Down => matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Ne),
        GrowthDir::Unknown => false,
    }
}

/// Per-rule verdicts for the whole program: `(rule index, issue)` for every
/// non-r-monotonic rule.
pub fn r_monotonicity_report(program: &Program) -> Vec<(usize, String)> {
    program
        .rules
        .iter()
        .enumerate()
        .filter_map(|(i, r)| rule_issue(program, r).map(|m| (i, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    #[test]
    fn company_control_split_rules_are_not_r_monotonic() {
        let p = parse_program(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        )
        .unwrap();
        let report = r_monotonicity_report(&p);
        // Rule 2 (the sum into the head) is the culprit.
        assert!(report.iter().any(|(i, _)| *i == 2), "{report:?}");
        // Rules 0, 1 are plain positive rules: r-monotonic.
        assert!(!report.iter().any(|(i, _)| *i == 0));
        assert!(!report.iter().any(|(i, _)| *i == 1));
    }

    #[test]
    fn merged_company_rule_is_r_monotonic() {
        let p = parse_program(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            c(X, Y) :- N =r sum M : cv(X, Z, Y, M), N > 0.5.
            "#,
        )
        .unwrap();
        assert!(r_monotonicity_report(&p).is_empty());
    }

    #[test]
    fn shortest_path_is_not_r_monotonic() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            "#,
        )
        .unwrap();
        let report = r_monotonicity_report(&p);
        assert!(report.iter().any(|(i, m)| *i == 2 && m.contains("head")));
    }

    #[test]
    fn party_is_not_r_monotonic_due_to_variable_threshold() {
        let p = parse_program(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        )
        .unwrap();
        let report = r_monotonicity_report(&p);
        assert!(
            report
                .iter()
                .any(|(i, m)| *i == 0 && m.contains("upward-closed")),
            "{report:?}"
        );
    }

    #[test]
    fn min_guard_direction_is_respected() {
        // min shrinks as the multiset grows, so `N < 5` is upward-closed
        // but `N > 5` is not.
        let p = parse_program(
            r#"
            declare pred d/2 cost min_real.
            near(X) :- N =r min M : d(X, M), N < 5.
            d(X, C) :- near(X), base(X, C).
            "#,
        )
        .unwrap();
        assert!(r_monotonicity_report(&p).is_empty());

        let p2 = parse_program(
            r#"
            declare pred d/2 cost min_real.
            far(X) :- N =r min M : d(X, M), N > 5.
            d(X, C) :- far(X), base(X, C).
            "#,
        )
        .unwrap();
        assert!(!r_monotonicity_report(&p2).is_empty());
    }

    #[test]
    fn negation_is_never_r_monotonic() {
        let p = parse_program("p(X) :- q(X), ! r(X).").unwrap();
        assert!(!r_monotonicity_report(&p).is_empty());
    }
}
