//! Well-typedness, well-formedness, monotone built-in conjunctions, and
//! admissibility (Definitions 4.2–4.5, Lemma 4.1).
//!
//! A rule is **admissible** when
//!
//! 1. it is *well typed*: every aggregate application matches one of the
//!    function's Figure-1 signatures on the declared cost domains;
//! 2. it is *well formed* (Definition 4.2): no built-ins inside aggregates
//!    (structural in our AST), only variables in CDB cost positions and
//!    aggregate-result positions, and each CDB cost variable occurs at most
//!    once among the non-built-in subgoals;
//! 3. every CDB aggregate uses a monotonic function, or a pseudo-monotonic
//!    one with all CDB conjunct predicates declared default-valued
//!    (Definition 4.1's fixed-cardinality trick, as in circuit Example 4.4);
//! 4. the conjunction `E_r` of built-in subgoals is monotone
//!    (Definition 4.4), which we establish with a sufficient
//!    direction-analysis: classify every variable as *fixed* or *rising*
//!    (weakly increasing numerically up or down as `J` grows) and check
//!    that every comparison is upward-closed and that the head cost
//!    variable's defining expression moves in its domain's direction.
//!
//! Additionally (Section 6.3's closing remark) a monotonic component may
//! not negate its own predicates; we fold that into the admissibility
//! verdict.
//!
//! By Lemma 4.1, a program whose rules are all admissible is monotonic, so
//! `T_P` has a least fixpoint and the engine's bottom-up iteration computes
//! the unique minimal model.

use crate::diag::{var_span, Code};
use maglog_datalog::{
    graph::{components, Component as SccComponent},
    AggFunc, Aggregate, Atom, BinOp, CmpOp, Const, DomainSpec, Expr, Literal, Pred, Program,
    Rule, Span, Term, Var,
};
use std::collections::{BTreeSet, HashMap};

/// One admissibility signature of an aggregate function: apply it to
/// multisets over `domain` (``None`` = any domain / implicit boolean) and
/// get results in `range`; `monotonic` distinguishes monotonic from merely
/// pseudo-monotonic structures (Definition 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggSig {
    pub domain: Option<DomainSpec>,
    pub range: DomainSpec,
    pub monotonic: bool,
}

/// The Figure-1 signatures (monotonic rows) plus the pseudo-monotonic
/// structures discussed in Section 4.1.1.
pub fn signatures(func: AggFunc) -> &'static [AggSig] {
    use DomainSpec::*;
    macro_rules! sigs {
        ($( ($domain:expr, $range:expr, $mono:expr) ),+ $(,)?) => {{
            const S: &[AggSig] = &[
                $(AggSig { domain: $domain, range: $range, monotonic: $mono }),+
            ];
            S
        }};
    }
    match func {
        AggFunc::Min => sigs![
            (Some(MinReal), MinReal, true),
            (Some(MaxReal), MaxReal, false),
            (Some(NonNegReal), NonNegReal, false),
        ],
        AggFunc::Max => sigs![
            (Some(MaxReal), MaxReal, true),
            (Some(NonNegReal), NonNegReal, true),
            (Some(Nat), Nat, true),
            (Some(MinReal), MinReal, false),
        ],
        AggFunc::Sum => sigs![
            (Some(NonNegReal), NonNegReal, true),
            (Some(Nat), Nat, true),
        ],
        AggFunc::Count => sigs![(None, Nat, true)],
        AggFunc::Product => sigs![(Some(PosNat), PosNat, true)],
        AggFunc::And => sigs![
            (Some(BoolAnd), BoolAnd, true),
            (Some(BoolOr), BoolOr, false),
        ],
        AggFunc::Or => sigs![
            (Some(BoolOr), BoolOr, true),
            (Some(BoolAnd), BoolAnd, false),
        ],
        AggFunc::Union => sigs![(Some(SetUnion), SetUnion, true)],
        AggFunc::Intersect => sigs![(Some(SetIntersect), SetIntersect, true)],
        AggFunc::Avg => sigs![
            (Some(MaxReal), MaxReal, false),
            (Some(NonNegReal), NonNegReal, false),
            (Some(MinReal), MinReal, false),
        ],
        AggFunc::HalfSum => sigs![(Some(NonNegReal), NonNegReal, true)],
    }
}

/// May a value from `from` flow into a position typed `to` while keeping
/// "rises in `from`" implying "rises in `to`"? Identity, or widening along
/// the `≤`-ordered numeric chain `PosNat/Nat ⊆ NonNegReal ⊆ MaxReal`.
pub fn flows_into(from: DomainSpec, to: DomainSpec) -> bool {
    use DomainSpec::*;
    if from == to {
        return true;
    }
    matches!(
        (from, to),
        (Nat, NonNegReal)
            | (Nat, MaxReal)
            | (PosNat, Nat)
            | (PosNat, NonNegReal)
            | (PosNat, MaxReal)
            | (NonNegReal, MaxReal)
    )
}

/// A problem preventing admissibility.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissibilityIssue {
    pub rule_index: usize,
    /// Which MAG04xx condition failed.
    pub code: Code,
    /// Byte span of the offending subgoal, aggregate, or variable (dummy
    /// for synthesized rules).
    pub span: Span,
    pub message: String,
}

/// Analysis verdict for one program component.
#[derive(Clone, Debug)]
pub struct ComponentReport {
    /// Predicates of the component (its CDB).
    pub preds: BTreeSet<Pred>,
    /// Rule indices (into `program.rules`).
    pub rule_indices: Vec<usize>,
    pub recursive_aggregation: bool,
    pub recursive_negation: bool,
    pub issues: Vec<AdmissibilityIssue>,
}

impl ComponentReport {
    pub fn admissible(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Check every component of the program (Definition 4.5 per rule, relative
/// to that component's CDB).
pub fn admissibility_report(program: &Program) -> Vec<ComponentReport> {
    components(program)
        .into_iter()
        .map(|c| check_component(program, &c))
        .collect()
}

fn check_component(program: &Program, component: &SccComponent) -> ComponentReport {
    let cdb = &component.preds;
    let mut issues = Vec::new();
    for &i in &component.rule_indices {
        let rule = &program.rules[i];
        for (code, span, message) in check_rule(program, cdb, rule) {
            issues.push(AdmissibilityIssue {
                rule_index: i,
                code,
                span: if span.is_dummy() { rule.span } else { span },
                message,
            });
        }
    }
    ComponentReport {
        preds: component.preds.clone(),
        rule_indices: component.rule_indices.clone(),
        recursive_aggregation: component.recursive_aggregation,
        recursive_negation: component.recursive_negation,
        issues,
    }
}

/// All admissibility problems of a single rule relative to a CDB, as
/// `(lint code, span, message)` triples.
pub fn check_rule(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule: &Rule,
) -> Vec<(Code, Span, String)> {
    let mut issues = Vec::new();

    // --- No negation on CDB predicates. ---
    for lit in &rule.body {
        if let Literal::Neg(a) = lit {
            if cdb.contains(&a.pred) {
                issues.push((
                    Code::NegationOnComponent,
                    a.span,
                    format!(
                        "negative subgoal on component predicate {} breaks monotonicity",
                        program.pred_name(a.pred)
                    ),
                ));
            }
        }
    }

    // --- Well-formedness (Definition 4.2). ---
    issues.extend(well_formed_issues(program, cdb, rule));

    // --- Well-typedness + per-aggregate monotonicity conditions. ---
    let mut typings: HashMap<usize, AggSig> = HashMap::new();
    for (idx, lit) in rule.body.iter().enumerate() {
        let Literal::Agg(agg) = lit else { continue };
        let is_ldb_agg = !agg.conjuncts.iter().any(|a| cdb.contains(&a.pred));
        if is_ldb_agg {
            // LDB aggregates run over a fixed relation: monotonicity is
            // irrelevant, only carrier compatibility matters (e.g.
            // `intersect` over ⊆-ordered set values is fine here).
            if let Err(msg) = type_ldb_aggregate(program, agg) {
                issues.push((Code::IllTypedAggregate, agg.span, msg));
            }
            continue;
        }
        match type_aggregate(program, agg) {
            Ok(sig) => {
                typings.insert(idx, sig);
                let is_cdb_agg = true;
                if is_cdb_agg && !sig.monotonic {
                    // Pseudo-monotonic escape hatch: every CDB conjunct must
                    // be a default-value cost predicate.
                    let all_default = agg
                        .conjuncts
                        .iter()
                        .filter(|a| cdb.contains(&a.pred))
                        .all(|a| program.has_default(a.pred));
                    if !all_default {
                        issues.push((
                            Code::PseudoMonotonic,
                            agg.span,
                            format!(
                                "aggregate '{}' is only pseudo-monotonic here, which requires \
                                 every component predicate inside it to be a default-value \
                                 cost predicate",
                                agg.func.name()
                            ),
                        ));
                    }
                }
            }
            Err(msg) => issues.push((Code::IllTypedAggregate, agg.span, msg)),
        }
    }

    // --- Head cost flow + E_r monotonicity. ---
    issues.extend(er_monotonicity_issues(program, cdb, rule, &typings));

    issues
}

fn well_formed_issues(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule: &Rule,
) -> Vec<(Code, Span, String)> {
    let mut issues = Vec::new();

    // Condition 2: only variables in cost arguments of CDB predicates and
    // in aggregate-result positions.
    let check_cost_is_var = |atom: &Atom, issues: &mut Vec<(Code, Span, String)>| {
        if cdb.contains(&atom.pred) && program.is_cost_pred(atom.pred) {
            if let Some(Term::Const(c)) = atom.cost_arg(true) {
                issues.push((
                    Code::WellFormedness,
                    atom.arg_span(atom.args.len().saturating_sub(1)),
                    format!(
                        "constant {} in the cost argument of component predicate {} \
                         (rewrite with an explicit builtin, e.g. `C = {}`)",
                        program.display_const(c),
                        program.pred_name(atom.pred),
                        program.display_const(c),
                    ),
                ));
            }
        }
    };
    check_cost_is_var(&rule.head, &mut issues);
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => check_cost_is_var(a, &mut issues),
            Literal::Agg(agg) => {
                for a in &agg.conjuncts {
                    check_cost_is_var(a, &mut issues);
                }
                if matches!(agg.result, Term::Const(_)) {
                    issues.push((
                        Code::WellFormedness,
                        agg.span,
                        "constant aggregate result makes the subgoal a nonmonotonic test \
                         (the Section 3 two-minimal-models program); use a variable and a \
                         comparison instead"
                            .to_string(),
                    ));
                }
            }
            Literal::Builtin(_) => {}
        }
    }

    // Condition 3: each CDB cost variable occurs at most once among the
    // non-built-in subgoals.
    let mut occurrences: HashMap<Var, usize> = HashMap::new();
    let cdb_cost_vars = cdb_cost_vars(program, cdb, rule);
    let count = |v: Var, occurrences: &mut HashMap<Var, usize>| {
        if cdb_cost_vars.contains(&v) {
            *occurrences.entry(v).or_insert(0) += 1;
        }
    };
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                for v in a.vars() {
                    count(v, &mut occurrences);
                }
            }
            Literal::Agg(agg) => {
                if let Term::Var(v) = agg.result {
                    count(v, &mut occurrences);
                }
                // Per Definition 4.2's technical note, the multiset
                // variable's occurrence immediately after the aggregate
                // function is ignored; occurrences inside the conjunction
                // count.
                for a in &agg.conjuncts {
                    for v in a.vars() {
                        count(v, &mut occurrences);
                    }
                }
            }
            Literal::Builtin(_) => {}
        }
    }
    let mut repeated: Vec<(Var, usize)> = occurrences
        .into_iter()
        .filter(|&(_, n)| n > 1)
        .collect();
    repeated.sort();
    for (v, n) in repeated {
        issues.push((
            Code::WellFormedness,
            rule.span,
            format!(
                "CDB cost variable {} occurs {n} times among non-built-in subgoals \
                 (well-formedness allows one)",
                program.var_name(v)
            ),
        ));
    }

    issues
}

/// The CDB cost variables of a rule body: variables in cost arguments of
/// CDB atoms (positive, negative, or inside aggregates) and result
/// variables of CDB aggregates.
fn cdb_cost_vars(program: &Program, cdb: &BTreeSet<Pred>, rule: &Rule) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                if cdb.contains(&a.pred) {
                    if let Some(Term::Var(v)) = a.cost_arg(program.is_cost_pred(a.pred)) {
                        out.insert(*v);
                    }
                }
            }
            Literal::Agg(agg) => {
                let is_cdb_agg = agg.conjuncts.iter().any(|a| cdb.contains(&a.pred));
                if is_cdb_agg {
                    if let Term::Var(v) = agg.result {
                        out.insert(v);
                    }
                }
                for a in &agg.conjuncts {
                    if cdb.contains(&a.pred) {
                        if let Some(Term::Var(v)) =
                            a.cost_arg(program.is_cost_pred(a.pred))
                        {
                            out.insert(*v);
                        }
                    }
                }
            }
            Literal::Builtin(_) => {}
        }
    }
    out
}

/// The value carrier of a domain or function — the looser compatibility
/// notion used for LDB aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Carrier {
    Num,
    Bool,
    Set,
}

fn domain_carrier(d: DomainSpec) -> Carrier {
    use DomainSpec::*;
    match d {
        MaxReal | MinReal | NonNegReal | Nat | PosNat => Carrier::Num,
        BoolOr | BoolAnd => Carrier::Bool,
        SetUnion | SetIntersect => Carrier::Set,
    }
}

fn func_carrier(func: AggFunc) -> Option<Carrier> {
    Some(match func {
        AggFunc::Min
        | AggFunc::Max
        | AggFunc::Sum
        | AggFunc::Product
        | AggFunc::Avg
        | AggFunc::HalfSum => Carrier::Num,
        AggFunc::And | AggFunc::Or => Carrier::Bool,
        AggFunc::Union | AggFunc::Intersect => Carrier::Set,
        AggFunc::Count => return None, // applies to anything
    })
}

/// Loose typing for LDB aggregates: the function must merely be applicable
/// to the aggregated cost values.
fn type_ldb_aggregate(program: &Program, agg: &Aggregate) -> Result<(), String> {
    let Some(e) = agg.multiset_var else {
        return Ok(()); // implicit-boolean count
    };
    let Some(want) = func_carrier(agg.func) else {
        return Ok(());
    };
    for a in &agg.conjuncts {
        let has_cost = program.is_cost_pred(a.pred);
        if a.cost_arg(has_cost) == Some(&Term::Var(e)) {
            if let Some(spec) = program.cost_spec(a.pred) {
                let got = domain_carrier(spec.domain);
                if got != want {
                    return Err(format!(
                        "aggregate '{}' applied to {} values of {}",
                        agg.func.name(),
                        match got {
                            Carrier::Num => "numeric",
                            Carrier::Bool => "boolean",
                            Carrier::Set => "set",
                        },
                        program.pred_name(a.pred)
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Resolve the aggregate's typing against the declared cost domains.
fn type_aggregate(program: &Program, agg: &Aggregate) -> Result<AggSig, String> {
    let sigs = signatures(agg.func);
    let Some(e) = agg.multiset_var else {
        // Implicit-boolean aggregation (count).
        return Ok(sigs[0]);
    };
    // The domains of the cost arguments where E occurs must agree.
    let mut domain: Option<DomainSpec> = None;
    for a in &agg.conjuncts {
        let has_cost = program.is_cost_pred(a.pred);
        if a.cost_arg(has_cost) == Some(&Term::Var(e)) {
            let d = program
                .cost_spec(a.pred)
                .map(|c| c.domain)
                .ok_or_else(|| {
                    format!(
                        "aggregated predicate {} has no declared cost domain",
                        program.pred_name(a.pred)
                    )
                })?;
            match domain {
                None => domain = Some(d),
                Some(prev) if prev != d => {
                    return Err(format!(
                        "aggregate '{}' mixes cost domains {} and {}",
                        agg.func.name(),
                        prev.name(),
                        d.name()
                    ))
                }
                Some(_) => {}
            }
        }
    }
    let d = domain.ok_or_else(|| {
        "multiset variable does not occur in any declared cost argument".to_string()
    })?;
    sigs.iter()
        .find(|s| s.domain == Some(d) || s.domain.is_none())
        .copied()
        .ok_or_else(|| {
            format!(
                "aggregate '{}' is not (pseudo-)monotonic on domain {} \
                 (no Figure-1 signature matches)",
                agg.func.name(),
                d.name()
            )
        })
}

/// Numeric direction of a value as `J` grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    /// Identical under both assignments.
    Fixed,
    /// Weakly increases numerically.
    Up,
    /// Weakly decreases numerically.
    Down,
    Unknown,
}

impl Dir {
    fn flip(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
            other => other,
        }
    }
}

/// Direction plus a known-nonnegative flag (needed for multiplication).
#[derive(Clone, Copy, Debug, PartialEq)]
struct DirInfo {
    dir: Dir,
    nonneg: bool,
}

fn domain_dir(d: DomainSpec) -> Dir {
    if d.is_reversed() {
        Dir::Down
    } else {
        Dir::Up
    }
}

fn domain_nonneg(d: DomainSpec) -> bool {
    matches!(
        d,
        DomainSpec::NonNegReal
            | DomainSpec::Nat
            | DomainSpec::PosNat
            | DomainSpec::BoolOr
            | DomainSpec::BoolAnd
    )
}

/// Check Definition 4.4 (monotone `E_r`) with a sufficient direction
/// analysis, and check that the head cost variable moves in its domain's
/// direction.
fn er_monotonicity_issues(
    program: &Program,
    cdb: &BTreeSet<Pred>,
    rule: &Rule,
    agg_typings: &HashMap<usize, AggSig>,
) -> Vec<(Code, Span, String)> {
    let mut issues = Vec::new();

    // Classification of variables appearing in non-built-in subgoals.
    let mut info: HashMap<Var, DirInfo> = HashMap::new();
    for (idx, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                let has_cost = program.is_cost_pred(a.pred);
                for (i, t) in a.args.iter().enumerate() {
                    let Term::Var(v) = t else { continue };
                    let is_cost_pos = has_cost && i + 1 == a.args.len();
                    if is_cost_pos && cdb.contains(&a.pred) {
                        let d = program.cost_spec(a.pred).expect("cost pred").domain;
                        info.insert(
                            *v,
                            DirInfo {
                                dir: domain_dir(d),
                                nonneg: domain_nonneg(d),
                            },
                        );
                    } else {
                        info.entry(*v).or_insert(DirInfo {
                            dir: Dir::Fixed,
                            nonneg: false,
                        });
                    }
                }
            }
            Literal::Agg(agg) => {
                if let Term::Var(v) = agg.result {
                    let is_cdb_agg = agg.conjuncts.iter().any(|a| cdb.contains(&a.pred));
                    if is_cdb_agg {
                        let range = agg_typings
                            .get(&idx)
                            .map(|s| s.range)
                            .unwrap_or(DomainSpec::MaxReal);
                        info.insert(
                            v,
                            DirInfo {
                                dir: domain_dir(range),
                                nonneg: domain_nonneg(range),
                            },
                        );
                    } else {
                        info.insert(
                            v,
                            DirInfo {
                                dir: Dir::Fixed,
                                nonneg: false,
                            },
                        );
                    }
                }
                for a in &agg.conjuncts {
                    for t in a.key_args(program.is_cost_pred(a.pred)) {
                        if let Term::Var(v) = t {
                            info.entry(*v).or_insert(DirInfo {
                                dir: Dir::Fixed,
                                nonneg: false,
                            });
                        }
                    }
                }
            }
            Literal::Builtin(_) => {}
        }
    }

    // Iteratively classify variables defined by equations, then check all
    // built-in subgoals.
    let builtins: Vec<&maglog_datalog::Builtin> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Builtin(b) => Some(b),
            _ => None,
        })
        .collect();

    let mut defined_by_eq: BTreeSet<usize> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for (bi, b) in builtins.iter().enumerate() {
            if b.op != CmpOp::Eq || defined_by_eq.contains(&bi) {
                continue;
            }
            // `V = e` (or `e = V`) where V is not yet classified and all of
            // e's variables are: define V.
            let try_define = |target: &Expr,
                              source: &Expr,
                              info: &mut HashMap<Var, DirInfo>|
             -> Option<bool> {
                let v = target.as_var()?;
                if info.contains_key(&v) {
                    return None;
                }
                let src = expr_dir(source, info)?;
                info.insert(v, src);
                Some(true)
            };
            let defined = try_define(&b.lhs, &b.rhs, &mut info)
                .or_else(|| try_define(&b.rhs, &b.lhs, &mut info));
            if defined.is_some() {
                defined_by_eq.insert(bi);
                changed = true;
            }
        }
    }

    // Every built-in not consumed as a definition must be upward-closed.
    for (bi, b) in builtins.iter().enumerate() {
        if defined_by_eq.contains(&bi) {
            continue;
        }
        let l = expr_dir(&b.lhs, &info);
        let r = expr_dir(&b.rhs, &info);
        let (Some(l), Some(r)) = (l, r) else {
            issues.push((
                Code::NonMonotoneBuiltin,
                b.span,
                format!(
                    "built-in subgoal {} involves unclassifiable variables",
                    program.display_literal(&Literal::Builtin((*b).clone()))
                ),
            ));
            continue;
        };
        let ok = match b.op {
            CmpOp::Eq | CmpOp::Ne => l.dir == Dir::Fixed && r.dir == Dir::Fixed,
            CmpOp::Lt | CmpOp::Le => {
                matches!(l.dir, Dir::Down | Dir::Fixed) && matches!(r.dir, Dir::Up | Dir::Fixed)
            }
            CmpOp::Gt | CmpOp::Ge => {
                matches!(l.dir, Dir::Up | Dir::Fixed) && matches!(r.dir, Dir::Down | Dir::Fixed)
            }
        };
        if !ok {
            issues.push((
                Code::NonMonotoneBuiltin,
                b.span,
                format!(
                    "built-in subgoal {} is not monotone: its truth can be lost as \
                     component cost values grow",
                    program.display_literal(&Literal::Builtin((*b).clone()))
                ),
            ));
        }
    }

    // The head cost variable must move in the head domain's direction.
    if let Some(spec) = program.cost_spec(rule.head.pred) {
        if let Some(Term::Var(v)) = rule.head.cost_arg(true) {
            match info.get(v) {
                None => {
                    // Not bound anywhere classifiable (range restriction
                    // will have its own complaint); treat as unknown here.
                    issues.push((
                        Code::NonMonotoneBuiltin,
                        var_span(&rule.head, *v),
                        format!(
                            "head cost variable {} has no classifiable definition",
                            program.var_name(*v)
                        ),
                    ));
                }
                Some(di) => {
                    let want = domain_dir(spec.domain);
                    let ok = di.dir == Dir::Fixed || di.dir == want;
                    if !ok {
                        issues.push((
                            Code::NonMonotoneBuiltin,
                            var_span(&rule.head, *v),
                            format!(
                                "head cost variable {} moves {:?} but the head domain {} \
                                 requires {:?}",
                                program.var_name(*v),
                                di.dir,
                                spec.domain.name(),
                                want
                            ),
                        ));
                    }
                }
            }
        }
    }

    issues
}

/// Direction of an expression given variable classifications; `None` when a
/// variable is unclassified.
fn expr_dir(e: &Expr, info: &HashMap<Var, DirInfo>) -> Option<DirInfo> {
    Some(match e {
        Expr::Term(Term::Const(Const::Num(n))) => DirInfo {
            dir: Dir::Fixed,
            nonneg: n.get() >= 0.0,
        },
        Expr::Term(Term::Const(Const::Sym(_))) => DirInfo {
            dir: Dir::Fixed,
            nonneg: false,
        },
        Expr::Term(Term::Var(v)) => *info.get(v)?,
        Expr::Neg(inner) => {
            let i = expr_dir(inner, info)?;
            DirInfo {
                dir: i.dir.flip(),
                nonneg: false,
            }
        }
        Expr::Bin(op, l, r) => {
            let li = expr_dir(l, info)?;
            let ri = expr_dir(r, info)?;
            match op {
                BinOp::Add => DirInfo {
                    dir: combine_add(li.dir, ri.dir),
                    nonneg: li.nonneg && ri.nonneg,
                },
                BinOp::Sub => DirInfo {
                    dir: combine_add(li.dir, ri.dir.flip()),
                    nonneg: false,
                },
                BinOp::Mul => mul_dir(e, li, ri, l, r),
                BinOp::Div => div_dir(li, ri, r),
                // min/max are monotone in both arguments: directions
                // combine like addition (mixed Up/Down is unknown).
                BinOp::Min | BinOp::Max => DirInfo {
                    dir: combine_add(li.dir, ri.dir),
                    nonneg: match op {
                        BinOp::Min => li.nonneg && ri.nonneg,
                        _ => li.nonneg || ri.nonneg,
                    },
                },
            }
        }
    })
}

fn combine_add(a: Dir, b: Dir) -> Dir {
    use Dir::*;
    match (a, b) {
        (Fixed, d) | (d, Fixed) => d,
        (Up, Up) => Up,
        (Down, Down) => Down,
        _ => Unknown,
    }
}

fn literal_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::Term(Term::Const(Const::Num(n))) => Some(n.get()),
        Expr::Neg(inner) => literal_value(inner).map(|v| -v),
        _ => None,
    }
}

fn mul_dir(_whole: &Expr, li: DirInfo, ri: DirInfo, l: &Expr, r: &Expr) -> DirInfo {
    // Literal constant factor: scale/flip the other side's direction.
    if let Some(c) = literal_value(l) {
        return scale_by_const(ri, c);
    }
    if let Some(c) = literal_value(r) {
        return scale_by_const(li, c);
    }
    if li.dir == Dir::Fixed && ri.dir == Dir::Fixed {
        return DirInfo {
            dir: Dir::Fixed,
            nonneg: li.nonneg && ri.nonneg,
        };
    }
    // Both sides known nonnegative: directions compose when compatible.
    if li.nonneg && ri.nonneg {
        let dir = match (li.dir, ri.dir) {
            (Dir::Up | Dir::Fixed, Dir::Up | Dir::Fixed) => Dir::Up,
            (Dir::Down | Dir::Fixed, Dir::Down | Dir::Fixed) => Dir::Down,
            _ => Dir::Unknown,
        };
        return DirInfo { dir, nonneg: true };
    }
    DirInfo {
        dir: Dir::Unknown,
        nonneg: false,
    }
}

fn scale_by_const(side: DirInfo, c: f64) -> DirInfo {
    let dir = if c > 0.0 {
        side.dir
    } else if c == 0.0 {
        Dir::Fixed
    } else {
        side.dir.flip()
    };
    DirInfo {
        dir,
        nonneg: side.nonneg && c >= 0.0,
    }
}

fn div_dir(li: DirInfo, _ri: DirInfo, r: &Expr) -> DirInfo {
    if let Some(c) = literal_value(r) {
        if c != 0.0 {
            return DirInfo {
                dir: if c > 0.0 { li.dir } else { li.dir.flip() },
                nonneg: li.nonneg && c > 0.0,
            };
        }
    }
    DirInfo {
        dir: Dir::Unknown,
        nonneg: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn all_admissible(src: &str) -> (bool, Vec<String>) {
        let p = parse_program(src).unwrap();
        let reports = admissibility_report(&p);
        let issues: Vec<String> = reports
            .iter()
            .flat_map(|r| r.issues.iter().map(|i| i.message.clone()))
            .collect();
        (issues.is_empty(), issues)
    }

    #[test]
    fn shortest_path_is_admissible() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn company_control_is_admissible() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn party_is_admissible_despite_k() {
        // Example 4.3: `N >= K` is fine because K is not a CDB cost var.
        let (ok, issues) = all_admissible(
            r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn circuit_with_defaults_is_admissible() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn circuit_without_default_is_rejected() {
        // Example 4.4's discussion: without the default declaration the AND
        // aggregate loses pseudo-monotonicity.
        let (ok, issues) = all_admissible(
            r#"
            declare pred t/2 cost bool_or.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#,
        );
        assert!(!ok);
        assert!(
            issues.iter().any(|m| m.contains("pseudo-monotonic")),
            "{issues:?}"
        );
    }

    #[test]
    fn section_3_nonmono_program_is_rejected() {
        // p(a) :- 1 =r count : q(X). — constant aggregate result.
        let (ok, issues) = all_admissible(
            r#"
            p(b).
            q(b).
            p(a) :- C =r count : q(X), C = 1.
            q(a) :- C =r count : p(X), C = 1.
            "#,
        );
        assert!(!ok);
        assert!(issues.iter().any(|m| m.contains("not monotone")), "{issues:?}");
    }

    #[test]
    fn wrong_direction_comparison_is_rejected() {
        // N < 0.5 with N a growing CDB sum: truth can be lost.
        let (ok, issues) = all_admissible(
            r#"
            declare pred cv/4 cost nonneg_real.
            declare pred s/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            c(X, Y) :- N =r sum M : cv(X, Z, Y, M), N < 0.5.
            "#,
        );
        assert!(!ok);
        assert!(issues.iter().any(|m| m.contains("not monotone")), "{issues:?}");
    }

    #[test]
    fn min_aggregate_on_max_domain_is_pseudo_and_gated() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost max_real.
            declare pred q/2 cost max_real.
            p(X, C) :- C =r min D : q(X, D).
            q(X, C) :- p(X, C).
            "#,
        );
        assert!(!ok);
        assert!(
            issues.iter().any(|m| m.contains("pseudo-monotonic")),
            "{issues:?}"
        );
    }

    #[test]
    fn sum_on_min_domain_has_no_signature() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost min_real.
            declare pred q/2 cost min_real.
            p(X, C) :- C =r sum D : q(X, D).
            q(X, C) :- p(X, C).
            "#,
        );
        assert!(!ok);
        assert!(
            issues.iter().any(|m| m.contains("no Figure-1 signature")),
            "{issues:?}"
        );
    }

    #[test]
    fn repeated_cdb_cost_var_is_rejected() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost max_real.
            p(X, C) :- p(Y, C), e(Y, X).
            "#,
        );
        // C occurs once in subgoals (p(Y,C)) so this is fine; make a true
        // violation: C used twice.
        let _ = (ok, issues);
        let (ok2, issues2) = all_admissible(
            r#"
            declare pred p/2 cost max_real.
            declare pred q/2 cost max_real.
            p(X, C) :- p(Y, C), q(X, C), e(Y, X).
            "#,
        );
        assert!(!ok2);
        assert!(
            issues2.iter().any(|m| m.contains("occurs 2 times")),
            "{issues2:?}"
        );
    }

    #[test]
    fn halfsum_is_monotonic_on_nonneg() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost nonneg_real.
            p(a, C) :- C =r halfsum D : p(X, D).
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn halfsum_direction_via_division_builtin() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost nonneg_real.
            declare pred q/2 cost nonneg_real.
            p(a, C) :- S =r sum D : q(X, D), C = S / 2.
            q(X, C) :- p(X, C).
            "#,
        );
        assert!(ok, "{issues:?}");
    }

    #[test]
    fn subtraction_of_rising_value_is_rejected() {
        let (ok, issues) = all_admissible(
            r#"
            declare pred p/2 cost nonneg_real.
            declare pred q/2 cost nonneg_real.
            p(X, C) :- q(X, D), C = 1 - D.
            q(X, C) :- p(X, C).
            "#,
        );
        assert!(!ok);
        assert!(
            issues.iter().any(|m| m.contains("head cost variable")),
            "{issues:?}"
        );
    }
}
