//! Functional dependencies and Armstrong closure.
//!
//! Definition 2.7 decides whether a rule is *cost-respecting* by inferring
//! the dependency "head non-cost variables → head cost variable" from the
//! body's FDs using Armstrong's axioms. Armstrong inference reduces to
//! attribute-set closure, implemented here over rule variables.

use maglog_datalog::Var;
use std::collections::BTreeSet;

/// A functional dependency `lhs → rhs` over rule variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    pub lhs: BTreeSet<Var>,
    pub rhs: BTreeSet<Var>,
}

impl Fd {
    pub fn new<L, R>(lhs: L, rhs: R) -> Self
    where
        L: IntoIterator<Item = Var>,
        R: IntoIterator<Item = Var>,
    {
        Fd {
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        }
    }
}

/// The closure of `attrs` under `fds` (the set of variables functionally
/// determined by `attrs`). Standard chase: repeatedly fire any FD whose
/// left side is contained in the current set.
pub fn closure(attrs: &BTreeSet<Var>, fds: &[Fd]) -> BTreeSet<Var> {
    let mut out = attrs.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&out) && !fd.rhs.is_subset(&out) {
                out.extend(fd.rhs.iter().copied());
                changed = true;
            }
        }
    }
    out
}

/// Does `lhs → rhs` follow from `fds` (Armstrong's axioms)?
pub fn implies(fds: &[Fd], lhs: &BTreeSet<Var>, rhs: &BTreeSet<Var>) -> bool {
    rhs.is_subset(&closure(lhs, fds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::{Sym, Var};

    fn v(i: u32) -> Var {
        Var(Sym(i))
    }

    fn set(vars: &[u32]) -> BTreeSet<Var> {
        vars.iter().map(|&i| v(i)).collect()
    }

    #[test]
    fn closure_of_empty_fds_is_identity() {
        let attrs = set(&[1, 2]);
        assert_eq!(closure(&attrs, &[]), attrs);
    }

    #[test]
    fn transitive_chain_closes() {
        // 1 → 2, 2 → 3 implies 1 → 3 (Armstrong transitivity).
        let fds = vec![Fd::new(set(&[1]), set(&[2])), Fd::new(set(&[2]), set(&[3]))];
        assert!(implies(&fds, &set(&[1]), &set(&[3])));
        assert!(!implies(&fds, &set(&[3]), &set(&[1])));
    }

    #[test]
    fn augmentation_is_implicit() {
        // 1 → 2 implies {1,3} → {2,3} (augmentation + reflexivity).
        let fds = vec![Fd::new(set(&[1]), set(&[2]))];
        assert!(implies(&fds, &set(&[1, 3]), &set(&[2, 3])));
    }

    #[test]
    fn shortest_path_rule_fd_inference() {
        // path(X,Z,Y,C) :- s(X,Z,C1), arc(Z,Y,C2), C = C1 + C2.
        // Vars: X=1, Z=2, Y=3, C=4, C1=5, C2=6.
        // FDs: {X,Z}→C1, {Z,Y}→C2, {C1,C2}→C.
        let fds = vec![
            Fd::new(set(&[1, 2]), set(&[5])),
            Fd::new(set(&[2, 3]), set(&[6])),
            Fd::new(set(&[5, 6]), set(&[4])),
        ];
        // Head noncost vars {X,Z,Y} must determine C.
        assert!(implies(&fds, &set(&[1, 2, 3]), &set(&[4])));
        // {X,Z} alone must not.
        assert!(!implies(&fds, &set(&[1, 2]), &set(&[4])));
    }

    #[test]
    fn pseudo_transitivity() {
        // 1 → 2 and {2,3} → 4 imply {1,3} → 4.
        let fds = vec![
            Fd::new(set(&[1]), set(&[2])),
            Fd::new(set(&[2, 3]), set(&[4])),
        ];
        assert!(implies(&fds, &set(&[1, 3]), &set(&[4])));
    }

    #[test]
    fn empty_lhs_means_constant() {
        // ∅ → 7 (a variable fixed by a constant) is usable from any set.
        let fds = vec![Fd::new(set(&[]), set(&[7]))];
        assert!(implies(&fds, &set(&[]), &set(&[7])));
        assert!(implies(&fds, &set(&[1]), &set(&[7])));
    }
}
