//! The combined analysis report.

use crate::admissible::{admissibility_report, ComponentReport};
use crate::conflict_free::{conflict_free_report, ConflictReport};
use crate::demand::{demand_report, ComponentDemand};
use crate::prem::{premappability_report, ComponentPrem};
use crate::range_restriction::{range_restriction_report, RangeIssue};
use crate::rmono::r_monotonicity_report;
use crate::termination::{termination_report, TerminationVerdict};
use maglog_datalog::Program;

/// Everything the paper's static battery says about a program.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Range-restriction violations (Definition 2.5); empty = safe.
    pub range_issues: Vec<RangeIssue>,
    /// Conflict-freedom analysis (Definition 2.10).
    pub conflicts: ConflictReport,
    /// Per-component admissibility (Definition 4.5).
    pub components: Vec<ComponentReport>,
    /// Rules that are not r-monotonic in the Section 5.2 sense, with
    /// reasons. Informational: r-monotonicity is a *comparison* class, not
    /// a requirement.
    pub non_r_monotonic: Vec<(usize, String)>,
    /// Per-component termination verdicts (Section 6.2's sufficient
    /// condition, via the cost-flow analysis). Informational: `Unknown`
    /// components still evaluate, under the round budget.
    pub termination: Vec<TerminationVerdict>,
    /// Per-component premappability verdicts (may the aggregate be pushed
    /// inside the recursion?). Advisory: drives `--optimize=prem`.
    pub prem: Vec<ComponentPrem>,
    /// Per-component demand verdicts (may point queries be restricted?).
    /// Advisory: drives `--optimize=demand`.
    pub demand: Vec<ComponentDemand>,
}

impl AnalysisReport {
    /// Is the program range-restricted (Lemma 2.2's precondition)?
    pub fn is_range_restricted(&self) -> bool {
        self.range_issues.is_empty()
    }

    /// Is the program conflict-free, hence cost-consistent (Lemma 2.3)?
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_conflict_free()
    }

    /// Are all components admissible, hence the program monotonic
    /// (Lemma 4.1)?
    pub fn is_monotonic(&self) -> bool {
        self.components.iter().all(|c| c.admissible())
    }

    /// Is every rule r-monotonic (the strictly smaller Mumick et al.
    /// class)?
    pub fn is_r_monotonic(&self) -> bool {
        self.non_r_monotonic.is_empty()
    }

    /// Is the program aggregate-stratified (no recursion through
    /// aggregation, Section 5.1)?
    pub fn is_aggregate_stratified(&self) -> bool {
        self.components.iter().all(|c| !c.recursive_aggregation)
    }

    /// May the engine evaluate this program to its unique least model?
    pub fn evaluable(&self) -> bool {
        self.is_range_restricted() && self.is_conflict_free() && self.is_monotonic()
    }

    /// Is bottom-up evaluation guaranteed to terminate (Section 6.2)?
    pub fn is_termination_guaranteed(&self) -> bool {
        self.termination.iter().all(TerminationVerdict::is_guaranteed)
    }

    /// Is some component's aggregate pushable inside the recursion
    /// (`--optimize=prem` has something to do)?
    pub fn is_premappable(&self) -> bool {
        self.prem.iter().any(ComponentPrem::premappable)
    }

    /// Does some recursive component admit demand restriction
    /// (`--optimize=demand` has something to do)?
    pub fn is_demand_restrictable(&self) -> bool {
        self.demand.iter().any(ComponentDemand::restrictable)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "range-restricted: {}",
            yesno(self.is_range_restricted())
        );
        for issue in &self.range_issues {
            let _ = writeln!(
                out,
                "  rule {} [{}]: {}",
                issue.rule_index, issue.code, issue.message
            );
        }
        let _ = writeln!(out, "conflict-free:    {}", yesno(self.is_conflict_free()));
        for issue in &self.conflicts.issues {
            let _ = writeln!(out, "  [{}] {}", issue.code(), issue.describe(program));
        }
        let _ = writeln!(out, "monotonic:        {}", yesno(self.is_monotonic()));
        for (ci, comp) in self.components.iter().enumerate() {
            let preds: Vec<String> = comp
                .preds
                .iter()
                .map(|p| program.pred_name(*p))
                .collect();
            let _ = writeln!(
                out,
                "  component {ci} {{{}}}: {}{}",
                preds.join(", "),
                if comp.admissible() {
                    "admissible"
                } else {
                    "NOT admissible"
                },
                if comp.recursive_aggregation {
                    " (recursion through aggregation)"
                } else {
                    ""
                }
            );
            for issue in &comp.issues {
                let _ = writeln!(
                    out,
                    "    rule {} [{}]: {}",
                    issue.rule_index, issue.code, issue.message
                );
            }
        }
        let _ = writeln!(
            out,
            "r-monotonic:      {}",
            yesno(self.non_r_monotonic.is_empty())
        );
        for (i, m) in &self.non_r_monotonic {
            let _ = writeln!(out, "  rule {i} [MAG0501]: {m}");
        }
        let _ = writeln!(
            out,
            "agg-stratified:   {}",
            yesno(self.is_aggregate_stratified())
        );
        let _ = writeln!(
            out,
            "terminating:      {}",
            yesno(self.is_termination_guaranteed())
        );
        for (i, v) in self.termination.iter().enumerate() {
            if !v.is_guaranteed() {
                let _ = writeln!(out, "  component {i} [MAG0601]: {}", v.reason());
            }
        }
        let agg_comps = self
            .prem
            .iter()
            .filter(|c| c.recursive_aggregation)
            .count();
        if agg_comps > 0 {
            let proven = self.prem.iter().filter(|c| c.premappable()).count();
            let _ = writeln!(
                out,
                "premappable:      {proven} of {agg_comps} recursive-aggregation component(s)"
            );
        }
        let recursive = self.demand.iter().filter(|c| c.recursive).count();
        if recursive > 0 {
            let restrictable = self.demand.iter().filter(|c| c.restrictable()).count();
            let _ = writeln!(
                out,
                "demand-restrict:  {restrictable} of {recursive} recursive component(s)"
            );
        }
        out
    }
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Run the full static battery.
pub fn check_program(program: &Program) -> AnalysisReport {
    let components = admissibility_report(program);
    let prem = premappability_report(program, &components);
    AnalysisReport {
        range_issues: range_restriction_report(program),
        conflicts: conflict_free_report(program),
        components,
        non_r_monotonic: r_monotonicity_report(program),
        termination: termination_report(program),
        prem,
        demand: demand_report(program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    #[test]
    fn shortest_path_full_verdict() {
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
            "#,
        )
        .unwrap();
        let r = check_program(&p);
        assert!(r.is_range_restricted());
        assert!(r.is_conflict_free());
        assert!(r.is_monotonic());
        assert!(!r.is_r_monotonic());
        assert!(!r.is_aggregate_stratified());
        assert!(r.evaluable());
        let summary = r.summary(&p);
        assert!(summary.contains("monotonic:        yes"));
        assert!(summary.contains("recursion through aggregation"));
    }

    #[test]
    fn grades_program_is_stratified_and_monotonic() {
        // Example 2.1: no recursion at all.
        let p = parse_program(
            r#"
            declare pred record/3 cost max_real.
            declare pred s_avg/2 cost max_real.
            declare pred c_avg/2 cost max_real.
            declare pred all_avg/1 cost max_real.
            s_avg(S, G) :- G =r avg G2 : record(S, C, G2).
            c_avg(C, G) :- G =r avg G2 : record(S, C, G2).
            all_avg(G) :- G =r avg G2 : c_avg(S, G2).
            "#,
        )
        .unwrap();
        let r = check_program(&p);
        assert!(r.is_aggregate_stratified());
        assert!(r.is_monotonic(), "{}", r.summary(&p));
        assert!(r.evaluable());
    }

    #[test]
    fn broken_program_fails_multiple_checks() {
        let p = parse_program(
            r#"
            declare pred q/3 cost max_real.
            declare pred p/2 cost max_real.
            p(X, C) :- q(X, Y, C).
            "#,
        )
        .unwrap();
        let r = check_program(&p);
        assert!(!r.is_conflict_free());
        assert!(!r.evaluable());
    }
}
