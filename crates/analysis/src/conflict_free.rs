//! Conflict-freedom (Definition 2.10, Lemma 2.3).
//!
//! A program is conflict-free if every rule is cost-respecting
//! (Definition 2.7) and, for every pair of rules whose heads — restricted
//! to the non-cost arguments — unify with MGU `θ`, either a containment
//! mapping exists between `r1θ` and `r2θ` (in one direction or the other)
//! or the conjunction of both bodies contains an instance of a declared
//! integrity constraint. Lemma 2.3: conflict-free ⇒ cost-consistent, i.e.
//! `T_P` never derives two atoms differing only in their cost argument.

use crate::containment::containment_mapping_exists;
use crate::cost_respect::is_cost_respecting;
use crate::unify::{contains_constraint_instance, rename_apart, unify_heads_noncost};
use maglog_datalog::{Literal, Program};

/// One conflict-freedom violation.
#[derive(Clone, Debug, PartialEq)]
pub enum ConflictIssue {
    /// A rule is not cost-respecting.
    NotCostRespecting { rule_index: usize },
    /// A pair of rules with unifiable heads has neither a containment
    /// mapping nor an integrity-constraint refutation.
    UnresolvedPair {
        rule_a: usize,
        rule_b: usize,
    },
}

impl ConflictIssue {
    /// The stable lint code of this issue kind.
    pub fn code(&self) -> crate::diag::Code {
        match self {
            ConflictIssue::NotCostRespecting { .. } => crate::diag::Code::NotCostRespecting,
            ConflictIssue::UnresolvedPair { .. } => crate::diag::Code::ConflictingPair,
        }
    }

    /// The rule index the issue anchors to (the first rule of a pair).
    pub fn rule_index(&self) -> usize {
        match self {
            ConflictIssue::NotCostRespecting { rule_index } => *rule_index,
            ConflictIssue::UnresolvedPair { rule_a, .. } => *rule_a,
        }
    }

    pub fn describe(&self, program: &Program) -> String {
        match self {
            ConflictIssue::NotCostRespecting { rule_index } => format!(
                "rule {} is not cost-respecting: {}",
                rule_index,
                program.display_rule(&program.rules[*rule_index])
            ),
            ConflictIssue::UnresolvedPair { rule_a, rule_b } => format!(
                "rules {rule_a} and {rule_b} may derive conflicting costs: {} / {}",
                program.display_rule(&program.rules[*rule_a]),
                program.display_rule(&program.rules[*rule_b])
            ),
        }
    }
}

/// Result of the conflict-freedom analysis.
#[derive(Clone, Debug, Default)]
pub struct ConflictReport {
    pub issues: Vec<ConflictIssue>,
}

impl ConflictReport {
    pub fn is_conflict_free(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Run the full Definition 2.10 check.
pub fn conflict_free_report(program: &Program) -> ConflictReport {
    let mut issues = Vec::new();

    for (i, rule) in program.rules.iter().enumerate() {
        if !is_cost_respecting(program, rule) {
            issues.push(ConflictIssue::NotCostRespecting { rule_index: i });
        }
    }

    // Pairs of distinct rules defining the same *cost* predicate.
    for i in 0..program.rules.len() {
        for j in (i + 1)..program.rules.len() {
            let r1 = &program.rules[i];
            if r1.head.pred != program.rules[j].head.pred {
                continue;
            }
            if !program.is_cost_pred(r1.head.pred) {
                // Rules without cost arguments cannot conflict on costs
                // (the paper's Example 4.3 remark).
                continue;
            }
            let r2 = rename_apart(program, &program.rules[j], "__r2");
            let Some(theta) = unify_heads_noncost(program, r1, &r2) else {
                continue;
            };
            let r1t = theta.apply_rule(r1);
            let r2t = theta.apply_rule(&r2);
            if containment_mapping_exists(&r1t, &r2t)
                || containment_mapping_exists(&r2t, &r1t)
            {
                continue;
            }
            let combined: Vec<Literal> = r1t
                .body
                .iter()
                .chain(r2t.body.iter())
                .cloned()
                .collect();
            let refuted = program
                .constraints
                .iter()
                .any(|c| contains_constraint_instance(c, &combined));
            if !refuted {
                issues.push(ConflictIssue::UnresolvedPair {
                    rule_a: i,
                    rule_b: j,
                });
            }
        }
    }

    ConflictReport { issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    fn report(src: &str) -> ConflictReport {
        conflict_free_report(&parse_program(src).unwrap())
    }

    const SHORTEST_PATH: &str = r#"
        declare pred arc/3 cost min_real.
        declare pred path/4 cost min_real.
        declare pred s/3 cost min_real.
        path(X, direct, Y, C) :- arc(X, Y, C).
        path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
        s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
        constraint :- arc(direct, Z, C).
    "#;

    #[test]
    fn shortest_path_is_conflict_free_with_constraint() {
        assert!(report(SHORTEST_PATH).is_conflict_free());
    }

    #[test]
    fn shortest_path_without_constraint_is_flagged() {
        let src = SHORTEST_PATH.replace("constraint :- arc(direct, Z, C).", "");
        let r = report(&src);
        assert!(!r.is_conflict_free());
        assert!(matches!(
            r.issues[0],
            ConflictIssue::UnresolvedPair { rule_a: 0, rule_b: 1 }
        ));
    }

    #[test]
    fn company_control_is_conflict_free() {
        let r = report(
            r#"
            declare pred s/3 cost nonneg_real.
            declare pred cv/4 cost nonneg_real.
            declare pred m/3 cost nonneg_real.
            cv(X, X, Y, N) :- s(X, Y, N).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
            c(X, Y) :- m(X, Y, N), N > 0.5.
            "#,
        );
        assert!(r.is_conflict_free(), "{:?}", r.issues);
    }

    #[test]
    fn section_2_4_incompatible_min_sum_rules() {
        // Two rules defining p(X, C) by different aggregates over
        // overlapping groups: incompatible (Section 2.4's first example).
        let r = report(
            r#"
            declare pred q/2 cost min_real.
            declare pred r/2 cost min_real.
            declare pred p/2 cost min_real.
            p(X, C) :- C =r min D : q(X, D).
            p(X, C) :- C =r sum D : r(X, D).
            "#,
        );
        assert!(!r.is_conflict_free());
    }

    #[test]
    fn non_cost_respecting_rule_is_flagged() {
        let r = report(
            r#"
            declare pred q/3 cost max_real.
            declare pred p/2 cost max_real.
            p(X, C) :- q(X, Y, C).
            "#,
        );
        assert_eq!(
            r.issues,
            vec![ConflictIssue::NotCostRespecting { rule_index: 0 }]
        );
    }

    #[test]
    fn circuit_with_gate_constraints_is_conflict_free() {
        let r = report(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            constraint :- gate(G, or), gate(G, and).
            constraint :- gate(G, T), input(G, C).
            "#,
        );
        assert!(r.is_conflict_free(), "{:?}", r.issues);
    }

    #[test]
    fn circuit_without_disjointness_constraints_is_flagged() {
        let r = report(
            r#"
            declare pred t/2 cost bool_or default.
            declare pred input/2 cost bool_or.
            t(W, C) :- input(W, C).
            t(G, C) :- gate(G, or), C = or D : [connect(G, W), t(W, D)].
            t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
            "#,
        );
        assert!(!r.is_conflict_free());
    }

    #[test]
    fn non_cost_heads_never_conflict() {
        let r = report(
            r#"
            coming(X) :- invited(X).
            coming(X) :- host(X).
            "#,
        );
        assert!(r.is_conflict_free());
    }

    #[test]
    fn disjoint_head_constants_do_not_conflict() {
        let r = report(
            r#"
            declare pred p/2 cost max_real.
            declare pred q/1 cost max_real.
            declare pred r/1 cost max_real.
            p(a, C) :- q(C).
            p(b, C) :- r(C).
            "#,
        );
        assert!(r.is_conflict_free(), "{:?}", r.issues);
    }
}
