//! Span-carrying diagnostics with stable lint codes.
//!
//! Every finding of the static battery — and of parsing and validation
//! before it — is reported as a [`Diagnostic`]: a stable `MAGxxxx` code, a
//! severity, a byte [`Span`] into the source text, a message, and optional
//! notes and a suggestion. Codes are grouped by the paper section they
//! enforce:
//!
//! | family  | paper concept                                            |
//! |---------|----------------------------------------------------------|
//! | MAG00xx | syntax                                                   |
//! | MAG01xx | program-level validation (arity, declarations)           |
//! | MAG02xx | range restriction (Def. 2.5) and conflicts (Def. 2.10)   |
//! | MAG04xx | admissibility (Defs. 4.2–4.5)                            |
//! | MAG05xx | comparison classes (r-monotonicity, stratification)      |
//! | MAG06xx | termination (Sec. 6.2)                                   |
//! | MAG07xx | optimization advisories (premappability, demand)         |
//!
//! Severities form the lattice `allow < note < warn < deny`; a
//! [`LintConfig`] reassigns them per code, and only deny-level findings
//! make `maglog check` fail. The informational MAG05xx/MAG06xx codes
//! default to `note`: a program can be perfectly evaluable under the
//! paper's semantics while falling outside the r-monotonic or
//! guaranteed-terminating classes.

use crate::conflict_free::ConflictIssue;
use crate::report::{check_program, AnalysisReport};
use maglog_datalog::{
    parse_program_raw, validate::validate, Atom, LineIndex, Program, Span, Term, ValidateKind,
    Var,
};
use std::collections::HashMap;
use std::fmt;

/// How severely a finding is treated. Ordered: `Allow < Note < Warn <
/// Deny`. `Allow`ed findings are dropped entirely; only `Deny` findings
/// fail a check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Allow,
    Note,
    Warn,
    Deny,
}

impl Severity {
    /// The rustc-style label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Allow => "allowed",
            Severity::Note => "note",
            Severity::Warn => "warning",
            Severity::Deny => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Severity> {
        Some(match s {
            "allow" => Severity::Allow,
            "note" => Severity::Note,
            "warn" => Severity::Warn,
            "deny" => Severity::Deny,
            _ => return None,
        })
    }
}

macro_rules! codes {
    ($( $variant:ident => ($code:literal, $sev:ident, $title:literal, $paper:literal) ),+ $(,)?) => {
        /// A stable lint code. The `MAGxxxx` string of a variant never
        /// changes once released; new codes get new numbers.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Code {
            $(#[doc = $title] $variant),+
        }

        impl Code {
            /// Every released code, in numeric order.
            pub const ALL: &'static [Code] = &[$(Code::$variant),+];

            /// The stable `MAGxxxx` string.
            pub fn as_str(self) -> &'static str {
                match self { $(Code::$variant => $code),+ }
            }

            /// Parse a `MAGxxxx` string back to its code.
            pub fn parse(s: &str) -> Option<Code> {
                match s { $($code => Some(Code::$variant),)+ _ => None }
            }

            /// One-line description of what the code flags.
            pub fn title(self) -> &'static str {
                match self { $(Code::$variant => $title),+ }
            }

            /// Where in Ross & Sagiv (PODS 1992) the condition is defined.
            pub fn paper_ref(self) -> &'static str {
                match self { $(Code::$variant => $paper),+ }
            }

            /// Severity before any [`LintConfig`] overrides.
            pub fn default_severity(self) -> Severity {
                match self { $(Code::$variant => Severity::$sev),+ }
            }
        }
    };
}

codes! {
    Syntax => ("MAG0001", Deny,
        "the source text is not a syntactically valid program",
        "Section 2.1 (rule syntax), Definition 2.4 (aggregate subgoals)"),
    Arity => ("MAG0101", Deny,
        "a predicate is used with inconsistent or undeclared arity",
        "Section 2.1 (predicate conventions)"),
    DefaultDecl => ("MAG0102", Deny,
        "a default-value cost declaration is malformed",
        "Section 2.3.2 (default-value cost predicates)"),
    RangeHead => ("MAG0201", Deny,
        "a head variable is not limited (or its cost not quasi-limited)",
        "Definition 2.5 (range restriction), Lemma 2.2"),
    RangeNegated => ("MAG0202", Deny,
        "a negated subgoal has a non-limited variable",
        "Definition 2.5 (range restriction)"),
    RangeDefault => ("MAG0203", Deny,
        "a default-value subgoal has a non-limited variable",
        "Definition 2.5 with Section 2.3.2 (default-value predicates)"),
    RangeAggregate => ("MAG0204", Deny,
        "an aggregate grouping or local variable is not limited",
        "Definition 2.5 (range restriction of aggregate subgoals)"),
    RangeBuiltin => ("MAG0205", Deny,
        "a built-in subgoal variable is neither limited nor quasi-limited",
        "Definition 2.5 (quasi-limited variables)"),
    NotCostRespecting => ("MAG0210", Deny,
        "a rule is not cost-respecting",
        "Definition 2.7 (cost-respecting rules)"),
    ConflictingPair => ("MAG0211", Deny,
        "two rules may derive atoms differing only in their cost",
        "Definition 2.10 (conflict-freedom), Lemma 2.3"),
    IllTypedAggregate => ("MAG0401", Deny,
        "an aggregate application matches no Figure-1 signature",
        "Definition 4.3 (well-typedness), Figure 1"),
    IllFormedAggregate => ("MAG0402", Deny,
        "an aggregate subgoal is structurally ill-formed",
        "Definition 2.4 (aggregate subgoals)"),
    WellFormedness => ("MAG0403", Deny,
        "a rule violates well-formedness",
        "Definition 4.2 (well-formed rules)"),
    PseudoMonotonic => ("MAG0404", Deny,
        "a pseudo-monotonic aggregate lacks the default-value escape hatch",
        "Section 4.1.1, Definition 4.1, Example 4.4"),
    NonMonotoneBuiltin => ("MAG0405", Deny,
        "the built-in conjunction is not monotone",
        "Definition 4.4 (monotone built-in conjunctions)"),
    NegationOnComponent => ("MAG0406", Deny,
        "a rule negates a predicate of its own component",
        "Section 6.3 (recursion through negation)"),
    NotRMonotonic => ("MAG0501", Note,
        "a rule falls outside the r-monotonic class",
        "Section 5.2, Definition 5.1 (Mumick et al.)"),
    RecursiveAggregation => ("MAG0502", Note,
        "a component recurses through aggregation",
        "Section 5.1 (aggregate stratification)"),
    TerminationUnknown => ("MAG0601", Note,
        "bottom-up termination is not syntactically guaranteed",
        "Section 6.2, Example 5.1"),
    Premappable => ("MAG0701", Note,
        "a recursive aggregate is premappable: pushdown is proven sound",
        "the premappability (PreM) condition, Zaniolo et al. arXiv:1910.08888"),
    PushdownRefused => ("MAG0702", Note,
        "aggregate pushdown refused: a premappability obligation failed",
        "the premappability (PreM) condition, Zaniolo et al. arXiv:1910.08888"),
    DemandRestrictable => ("MAG0703", Note,
        "point queries on this component can be demand-restricted",
        "the magic-sets demand transformation; cf. arXiv:1707.05681"),
    DemandUnsupported => ("MAG0704", Note,
        "no key position of this recursive component admits demand restriction",
        "the magic-sets demand transformation; cf. arXiv:1707.05681"),
}

impl Code {
    /// A fix-it suggestion for codes that have a canonical remedy.
    pub fn help(self) -> Option<&'static str> {
        Some(match self {
            Code::RangeHead | Code::RangeNegated | Code::RangeAggregate => {
                "bind the variable in a positive non-default subgoal, or equate it \
                 to a limited variable or constant"
            }
            Code::RangeDefault => {
                "default-value predicates hold for every key: restrict their \
                 non-cost arguments through another positive subgoal"
            }
            Code::NotCostRespecting => {
                "make the non-cost head arguments functionally determine the cost \
                 (Definition 2.7), e.g. aggregate over the multiset instead of \
                 copying one element's cost"
            }
            Code::ConflictingPair => {
                "add an integrity constraint ruling out the overlap, or make the \
                 rules' groups provably disjoint"
            }
            Code::PseudoMonotonic => {
                "declare every component predicate inside the aggregate as a \
                 default-value cost predicate (`declare pred p/k cost D default.`)"
            }
            Code::NonMonotoneBuiltin => {
                "compare rising values only with upward-closed guards (`>=` for \
                 growing costs, `<=` for shrinking ones)"
            }
            _ => return None,
        })
    }

    /// Long-form description of the code, shown by `maglog check --explain
    /// MAGxxxx` and mirrored in `docs/lint-codes.md`.
    pub fn explain(self) -> &'static str {
        match self {
            Code::Syntax => {
                "The source text could not be parsed as a maglog program. Programs \
                 consist of `declare` directives, facts, rules, aggregate subgoals \
                 written `V = f W : p(...)` (or `=r` for cost folds), and integrity \
                 constraints with the head `constraint`."
            }
            Code::Arity => {
                "Every predicate must be used with a single arity, matching its \
                 declaration when one exists. A mismatch usually indicates a typo'd \
                 argument list; maglog refuses to guess which occurrence is right."
            }
            Code::DefaultDecl => {
                "A `default` cost declaration is malformed. Default-value cost \
                 predicates (Section 2.3.2) hold at the lattice bottom for every \
                 key, so the declaration must name a cost domain with a bottom."
            }
            Code::RangeHead => {
                "A head variable is not limited by the body (or a head cost is not \
                 quasi-limited). Range restriction (Definition 2.5) is what keeps \
                 bottom-up evaluation inside the finite active domain (Lemma 2.2); \
                 an unlimited head variable would denote infinitely many tuples."
            }
            Code::RangeNegated => {
                "A variable of a negated subgoal is not limited by the positive \
                 part of the body. Negation-as-failure is only finitely testable \
                 over a finite candidate set."
            }
            Code::RangeDefault => {
                "A variable of a default-value subgoal is not limited elsewhere. \
                 Default-value predicates hold for *every* key, so they cannot \
                 limit their own arguments; some positive non-default subgoal must."
            }
            Code::RangeAggregate => {
                "An aggregate's grouping or local variable is not limited inside \
                 the aggregate's own conjunction, so the multiset being folded \
                 would be infinite."
            }
            Code::RangeBuiltin => {
                "A built-in subgoal uses a variable that is neither limited (bound \
                 to finitely many values) nor quasi-limited (computed from limited \
                 ones). Built-ins filter and compute; they cannot generate."
            }
            Code::NotCostRespecting => {
                "In a cost-consistent model each key maps to one cost. A rule \
                 whose non-cost head arguments do not functionally determine the \
                 head cost (Definition 2.7) can derive two costs for one key, \
                 breaking that invariant before aggregation can repair it."
            }
            Code::ConflictingPair => {
                "Two rules (or one rule with itself) may derive atoms that differ \
                 only in their cost, and no containment mapping or integrity \
                 constraint rules the overlap out (Definition 2.10). Conflict-\
                 freedom is what lets Lemma 2.3 fold all derivations of a key into \
                 a single lattice value."
            }
            Code::IllTypedAggregate => {
                "The aggregate's (function, input domain, output domain) triple \
                 matches no Figure-1 signature row. Each aggregate is only \
                 monotonic over specific domains — e.g. `min` consumes and \
                 produces `min_real`, `count` produces `nat`."
            }
            Code::IllFormedAggregate => {
                "The aggregate subgoal violates Definition 2.4's shape: one \
                 result variable, local variables disjoint from the rest of the \
                 rule, and a non-empty conjunction of ordinary subgoals."
            }
            Code::WellFormedness => {
                "The rule violates well-formedness (Definition 4.2): cost \
                 variables of subgoals must be distinct fresh variables used in \
                 the right places, so that cost flow through the rule is explicit."
            }
            Code::PseudoMonotonic => {
                "The aggregate (e.g. `count`, `sum` over possibly-shrinking \
                 inputs) is only pseudo-monotonic: growing its input multiset can \
                 shrink its output. The Section 4.1.1 escape hatch — declaring the \
                 aggregated predicates as default-value cost predicates — restores \
                 monotonicity by making every key present from the start."
            }
            Code::NonMonotoneBuiltin => {
                "The built-in conjunction is not monotone (Definition 4.4): a \
                 comparison points the wrong way relative to how its operands' \
                 costs grow, so a derivation could be retracted as costs improve."
            }
            Code::NegationOnComponent => {
                "A rule negates a predicate of its own recursive component. \
                 Semantics through such cycles is undefined here; stratify the \
                 negation so the negated predicate is fully computed first."
            }
            Code::NotRMonotonic => {
                "The rule falls outside Mumick et al.'s r-monotonic class \
                 (Section 5.2), a strictly smaller comparison class than this \
                 system's monotonic programs. Informational only: evaluability is \
                 unaffected."
            }
            Code::RecursiveAggregation => {
                "The component recurses through an aggregate subgoal, so it lies \
                 outside the aggregate-stratified class (Section 5.1). The paper's \
                 monotonic fixpoint semantics evaluates it anyway; this note marks \
                 the class boundary."
            }
            Code::TerminationUnknown => {
                "No syntactic certificate guarantees the component's fixpoint is \
                 reached in finitely many rounds (Section 6.2) — typically because \
                 costs flow through arithmetic that can keep producing new values \
                 (Example 5.1's additive cycle). Evaluation runs under the \
                 engine's round budget."
            }
            Code::Premappable => {
                "The component's recursive aggregate satisfies the premappability \
                 (PreM) obligations: the fold is the domain's join, the cost flows \
                 through distributive translations on a chain domain, recursion is \
                 linear, and the component is admissible. Pushing the aggregate \
                 into the recursion — pruning dominated derivations as they are \
                 emitted — provably preserves the least model. Enable it with \
                 `--optimize=prem`."
            }
            Code::PushdownRefused => {
                "The component recurses through an aggregate, but at least one \
                 premappability obligation failed (the message says which), so \
                 `--optimize=prem` will NOT prune it: an unsound pushdown could \
                 change the least model. The component still evaluates exactly; \
                 only the optimization is withheld."
            }
            Code::DemandRestrictable => {
                "Some key position of this recursive component carries a uniform \
                 stable binding: every derivation of a tuple with constant `a` \
                 there only involves component tuples carrying `a` at their \
                 assigned positions. Point queries (`maglog run --query`) with \
                 `--optimize=demand` restrict evaluation to that cone."
            }
            Code::DemandUnsupported => {
                "No key position of this recursive component admits a uniform \
                 stable binding (some rule moves the candidate variable between \
                 positions or drops it), so point queries must compute the \
                 component's full model. Informational only."
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, ready for rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Byte span of the offending text; [`Span::DUMMY`] when the finding
    /// has no single source location.
    pub span: Span,
    pub message: String,
    /// Extra context lines, rendered as `= note:`.
    pub notes: Vec<String>,
    /// A fix-it hint, rendered as `= help:`.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            notes: Vec::new(),
            suggestion: code.help().map(str::to_string),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// Per-code severity configuration: start from the defaults, optionally
/// escalate all warnings, then apply explicit per-code overrides (which win
/// over `deny_all`, so `--deny all --allow MAG0211` behaves as expected).
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: HashMap<Code, Severity>,
    deny_all: bool,
}

impl LintConfig {
    pub fn new() -> Self {
        Self::default()
    }

    /// Override one code's severity.
    pub fn set(&mut self, code: Code, severity: Severity) -> &mut Self {
        self.overrides.insert(code, severity);
        self
    }

    /// Escalate every warn-level code to deny. Notes are *not* escalated:
    /// they mark membership in comparison classes, not defects.
    pub fn set_deny_all(&mut self, on: bool) -> &mut Self {
        self.deny_all = on;
        self
    }

    /// The effective severity of a code.
    pub fn severity(&self, code: Code) -> Severity {
        if let Some(&s) = self.overrides.get(&code) {
            return s;
        }
        let base = code.default_severity();
        if self.deny_all && base == Severity::Warn {
            Severity::Deny
        } else {
            base
        }
    }
}

/// The span of variable `v`'s first occurrence in `atom`'s arguments,
/// falling back to the atom's own span.
pub fn var_span(atom: &Atom, v: Var) -> Span {
    for (i, t) in atom.args.iter().enumerate() {
        if *t == Term::Var(v) {
            return atom.arg_span(i);
        }
    }
    atom.span
}

/// Result of running the whole source-level pipeline: parse → validate →
/// static battery.
#[derive(Debug)]
pub struct SourceCheck {
    /// `None` when the source failed to parse.
    pub program: Option<Program>,
    /// `None` when parsing or validation failed before the battery ran.
    pub report: Option<AnalysisReport>,
    /// Findings with severity above `allow`, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl SourceCheck {
    /// Number of deny-level findings — the check's exit status.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }
}

/// Parse, validate, and run the full static battery over source text,
/// producing diagnostics for everything found along the way.
pub fn check_source(src: &str, config: &LintConfig) -> SourceCheck {
    let program = match parse_program_raw(src) {
        Ok(p) => p,
        Err(e) => {
            // Point errors from the parser carry only a line/column; turn
            // it back into a one-byte span for the renderers.
            let span = if e.span.is_dummy() {
                let offset = loc_offset(src, e.loc.line, e.loc.col);
                Span::new(offset, (offset + 1).min(src.len() as u32).max(offset))
            } else {
                e.span
            };
            return SourceCheck {
                program: None,
                report: None,
                diagnostics: vec![Diagnostic::new(
                    Code::Syntax,
                    Severity::Deny,
                    span,
                    e.message,
                )],
            };
        }
    };
    if let Err(e) = validate(&program) {
        let code = match e.kind {
            ValidateKind::Arity => Code::Arity,
            ValidateKind::DefaultDecl => Code::DefaultDecl,
            ValidateKind::Aggregate => Code::IllFormedAggregate,
        };
        return SourceCheck {
            diagnostics: vec![Diagnostic::new(code, Severity::Deny, e.span, e.message)],
            program: Some(program),
            report: None,
        };
    }
    let report = check_program(&program);
    let diagnostics = report_diagnostics(&program, &report, config);
    SourceCheck {
        program: Some(program),
        report: Some(report),
        diagnostics,
    }
}

fn loc_offset(src: &str, line: u32, col: u32) -> u32 {
    let index = LineIndex::new(src);
    let mut offset = 0u32;
    for l in 1..line {
        offset += index.line_text(src, l).len() as u32 + 1;
    }
    (offset + col.saturating_sub(1)).min(src.len() as u32)
}

/// Convert a finished [`AnalysisReport`] into diagnostics under a lint
/// configuration. Findings whose effective severity is `allow` are dropped;
/// the rest are sorted by source position.
pub fn report_diagnostics(
    program: &Program,
    report: &AnalysisReport,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let rule_span = |i: usize| program.rules[i].span;

    for issue in &report.range_issues {
        let span = if issue.span.is_dummy() {
            rule_span(issue.rule_index)
        } else {
            issue.span
        };
        out.push(
            Diagnostic::new(issue.code, config.severity(issue.code), span, &issue.message)
                .with_note(format!(
                    "in rule {}: {}",
                    issue.rule_index,
                    program.display_rule(&program.rules[issue.rule_index])
                )),
        );
    }

    for issue in &report.conflicts.issues {
        let code = issue.code();
        let d = match issue {
            ConflictIssue::NotCostRespecting { rule_index } => Diagnostic::new(
                code,
                config.severity(code),
                rule_span(*rule_index),
                format!(
                    "rule {} is not cost-respecting: its non-cost head arguments do \
                     not determine the cost",
                    rule_index
                ),
            )
            .with_note(format!(
                "rule {}: {}",
                rule_index,
                program.display_rule(&program.rules[*rule_index])
            )),
            ConflictIssue::UnresolvedPair { rule_a, rule_b } => Diagnostic::new(
                code,
                config.severity(code),
                rule_span(*rule_a),
                format!(
                    "rules {rule_a} and {rule_b} may derive conflicting costs for {}",
                    program.pred_name(program.rules[*rule_a].head.pred)
                ),
            )
            .with_note(format!(
                "rule {}: {}",
                rule_a,
                program.display_rule(&program.rules[*rule_a])
            ))
            .with_note(format!(
                "rule {}: {}",
                rule_b,
                program.display_rule(&program.rules[*rule_b])
            ))
            .with_note(
                "no containment mapping exists between the unified rules, and no \
                 integrity constraint refutes their conjunction",
            ),
        };
        out.push(d);
    }

    for comp in &report.components {
        for issue in &comp.issues {
            let span = if issue.span.is_dummy() {
                rule_span(issue.rule_index)
            } else {
                issue.span
            };
            out.push(
                Diagnostic::new(issue.code, config.severity(issue.code), span, &issue.message)
                    .with_note(format!(
                        "in rule {}: {}",
                        issue.rule_index,
                        program.display_rule(&program.rules[issue.rule_index])
                    )),
            );
        }
        if comp.recursive_aggregation {
            let code = Code::RecursiveAggregation;
            let preds: Vec<String> =
                comp.preds.iter().map(|p| program.pred_name(*p)).collect();
            let span = comp
                .rule_indices
                .first()
                .map(|&i| rule_span(i))
                .unwrap_or(Span::DUMMY);
            out.push(
                Diagnostic::new(
                    code,
                    config.severity(code),
                    span,
                    format!(
                        "component {{{}}} recurses through aggregation",
                        preds.join(", ")
                    ),
                )
                .with_note(
                    "outside the aggregate-stratified class; evaluated by the \
                     paper's monotonic fixpoint semantics instead",
                ),
            );
        }
    }

    for (i, message) in &report.non_r_monotonic {
        let code = Code::NotRMonotonic;
        out.push(
            Diagnostic::new(code, config.severity(code), rule_span(*i), message).with_note(
                format!("in rule {}: {}", i, program.display_rule(&program.rules[*i])),
            ),
        );
    }

    for (ci, verdict) in report.termination.iter().enumerate() {
        if verdict.is_guaranteed() {
            continue;
        }
        let code = Code::TerminationUnknown;
        let span = report
            .components
            .get(ci)
            .and_then(|c| c.rule_indices.first())
            .map(|&i| rule_span(i))
            .unwrap_or(Span::DUMMY);
        out.push(
            Diagnostic::new(code, config.severity(code), span, verdict.reason())
                .with_note("evaluation proceeds under the engine's round budget"),
        );
    }

    for comp in &report.prem {
        if !comp.recursive_aggregation {
            continue;
        }
        let preds: Vec<String> = comp.preds.iter().map(|p| program.pred_name(*p)).collect();
        if comp.premappable() {
            let code = Code::Premappable;
            let span = comp
                .agg_rules
                .first()
                .map(|&i| rule_span(i))
                .unwrap_or(Span::DUMMY);
            out.push(
                Diagnostic::new(
                    code,
                    config.severity(code),
                    span,
                    format!(
                        "the aggregate of component {{{}}} may be pushed inside \
                         the recursion",
                        preds.join(", ")
                    ),
                )
                .with_note("enable the pruning rewrite with `--optimize=prem`"),
            );
        } else {
            let code = Code::PushdownRefused;
            for refusal in &comp.refusals {
                let span = if refusal.span.is_dummy() {
                    rule_span(refusal.rule_index)
                } else {
                    refusal.span
                };
                out.push(
                    Diagnostic::new(
                        code,
                        config.severity(code),
                        span,
                        format!(
                            "aggregate pushdown refused for component {{{}}}: {}",
                            preds.join(", "),
                            refusal.reason
                        ),
                    )
                    .with_note(
                        "the component still evaluates exactly; only \
                         `--optimize=prem` pruning is withheld",
                    ),
                );
            }
        }
    }

    for comp in &report.demand {
        if !comp.recursive {
            continue;
        }
        let preds: Vec<String> = comp.preds.iter().map(|p| program.pred_name(*p)).collect();
        let span = comp
            .rule_indices
            .first()
            .map(|&i| rule_span(i))
            .unwrap_or(Span::DUMMY);
        if comp.restrictable() {
            let code = Code::DemandRestrictable;
            let positions: Vec<String> = comp
                .supported
                .iter()
                .map(|&(p, j)| format!("{}[{}]", program.pred_name(p), j))
                .collect();
            out.push(
                Diagnostic::new(
                    code,
                    config.severity(code),
                    span,
                    format!(
                        "component {{{}}} admits demand restriction at {}",
                        preds.join(", "),
                        positions.join(", ")
                    ),
                )
                .with_note(
                    "point queries with `--optimize=demand` evaluate only the \
                     query's derivation cone",
                ),
            );
        } else {
            let code = Code::DemandUnsupported;
            out.push(
                Diagnostic::new(
                    code,
                    config.severity(code),
                    span,
                    format!(
                        "no key position of component {{{}}} admits demand \
                         restriction",
                        preds.join(", ")
                    ),
                )
                .with_note("point queries on this component compute its full model"),
            );
        }
    }

    out.retain(|d| d.severity != Severity::Allow);
    out.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    out
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

/// Render diagnostics rustc-style: severity and code header, `-->` file
/// location, the offending source line with a caret underline, then notes
/// and help.
pub fn render_human(src: &str, filename: &str, diagnostics: &[Diagnostic]) -> String {
    let index = LineIndex::new(src);
    let mut out = String::new();
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        render_one_human(src, filename, &index, d, &mut out);
    }
    out
}

fn render_one_human(
    src: &str,
    filename: &str,
    index: &LineIndex,
    d: &Diagnostic,
    out: &mut String,
) {
    use std::fmt::Write;
    let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
    if !d.span.is_dummy() && (d.span.start as usize) < src.len() {
        let loc = index.loc(d.span.start);
        let line_text = index.line_text(src, loc.line);
        let gutter = loc.line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(out, "{pad}--> {filename}:{}:{}", loc.line, loc.col);
        let _ = writeln!(out, "{pad} |");
        let _ = writeln!(out, "{gutter} | {line_text}");
        // Clamp the underline to the first line of the span.
        let line_remaining = line_text.len().saturating_sub(loc.col as usize - 1);
        let width = (d.span.len() as usize).clamp(1, line_remaining.max(1));
        let _ = writeln!(
            out,
            "{pad} | {}{}",
            " ".repeat(loc.col as usize - 1),
            "^".repeat(width)
        );
    }
    let pad = " ";
    for note in &d.notes {
        let _ = writeln!(out, "{pad}= note: {note}");
    }
    // MAG07xx advisories cite the PreM / magic-sets literature, not the
    // Ross & Sagiv paper itself.
    let reference = d.code.paper_ref();
    if reference.contains("arXiv") {
        let _ = writeln!(out, "{pad}= note: see {reference}");
    } else {
        let _ = writeln!(out, "{pad}= note: see {reference} (Ross & Sagiv 1992)");
    }
    if let Some(help) = &d.suggestion {
        let _ = writeln!(out, "{pad}= help: {help}");
    }
}

/// Render diagnostics as a JSON document (no external dependencies):
/// `{"file": ..., "diagnostics": [...], "error_count": N}` with both byte
/// offsets and 1-based line/column positions per span.
pub fn render_json(src: &str, filename: &str, diagnostics: &[Diagnostic]) -> String {
    use std::fmt::Write;
    let index = LineIndex::new(src);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": {},", json_str(filename));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"code\": {},", json_str(d.code.as_str()));
        let _ = writeln!(out, "      \"title\": {},", json_str(d.code.title()));
        let _ = writeln!(out, "      \"severity\": {},", json_str(d.severity.label()));
        let _ = writeln!(out, "      \"message\": {},", json_str(&d.message));
        if d.span.is_dummy() {
            out.push_str("      \"span\": null,\n");
        } else {
            let start = index.loc(d.span.start);
            let end = index.loc(d.span.end);
            let _ = writeln!(
                out,
                "      \"span\": {{\"start\": {}, \"end\": {}, \
                 \"start_line\": {}, \"start_col\": {}, \
                 \"end_line\": {}, \"end_col\": {}}},",
                d.span.start, d.span.end, start.line, start.col, end.line, end.col
            );
        }
        out.push_str("      \"notes\": [");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("],\n");
        match &d.suggestion {
            Some(h) => {
                let _ = writeln!(out, "      \"help\": {},", json_str(h));
            }
            None => out.push_str("      \"help\": null,\n"),
        }
        let _ = writeln!(out, "      \"paper_ref\": {}", json_str(d.code.paper_ref()));
        out.push_str("    }");
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let denies = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let _ = writeln!(out, "  \"error_count\": {denies}");
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert!(seen.insert(c.as_str()), "duplicate code {}", c.as_str());
            assert!(c.as_str().starts_with("MAG"));
            assert!(!c.title().is_empty());
            assert!(!c.paper_ref().is_empty());
            assert!(!c.explain().is_empty(), "{} lacks an explanation", c.as_str());
        }
        assert_eq!(Code::parse("MAG9999"), None);
    }

    #[test]
    fn lint_config_precedence() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.severity(Code::RangeHead), Severity::Deny);
        assert_eq!(cfg.severity(Code::NotRMonotonic), Severity::Note);
        cfg.set_deny_all(true);
        // deny-all does not escalate notes.
        assert_eq!(cfg.severity(Code::NotRMonotonic), Severity::Note);
        // explicit overrides win over deny-all.
        cfg.set(Code::RangeHead, Severity::Allow);
        assert_eq!(cfg.severity(Code::RangeHead), Severity::Allow);
        cfg.set(Code::NotRMonotonic, Severity::Deny);
        assert_eq!(cfg.severity(Code::NotRMonotonic), Severity::Deny);
    }

    #[test]
    fn parse_error_becomes_mag0001() {
        let chk = check_source("p(X :- q(X).", &LintConfig::new());
        assert!(chk.program.is_none());
        assert_eq!(chk.diagnostics.len(), 1);
        assert_eq!(chk.diagnostics[0].code, Code::Syntax);
        assert_eq!(chk.diagnostics[0].severity, Severity::Deny);
        assert!(!chk.diagnostics[0].span.is_dummy());
        assert_eq!(chk.deny_count(), 1);
    }

    #[test]
    fn arity_error_becomes_mag0101_with_span() {
        let src = "p(a, b).\np(a).\n";
        let chk = check_source(src, &LintConfig::new());
        assert_eq!(chk.diagnostics.len(), 1);
        let d = &chk.diagnostics[0];
        assert_eq!(d.code, Code::Arity);
        assert!(!d.span.is_dummy());
        // The span points at the second, conflicting atom.
        assert_eq!(&src[d.span.start as usize..d.span.end as usize], "p(a)");
    }

    #[test]
    fn range_violation_flags_the_head_variable() {
        let src = "p(X, Y) :- q(X).";
        let chk = check_source(src, &LintConfig::new());
        let d = chk
            .diagnostics
            .iter()
            .find(|d| d.code == Code::RangeHead)
            .expect("MAG0201 reported");
        assert_eq!(&src[d.span.start as usize..d.span.end as usize], "Y");
        assert!(chk.deny_count() >= 1);
    }

    #[test]
    fn human_rendering_draws_a_caret() {
        let src = "p(X, Y) :- q(X).";
        let chk = check_source(src, &LintConfig::new());
        let text = render_human(src, "demo.mgl", &chk.diagnostics);
        assert!(text.contains("error[MAG0201]"), "{text}");
        assert!(text.contains("--> demo.mgl:1:6"), "{text}");
        assert!(text.contains("^"), "{text}");
        assert!(text.contains("= note: see Definition 2.5"), "{text}");
    }

    #[test]
    fn json_rendering_is_structured() {
        let src = "p(X, Y) :- q(X).";
        let chk = check_source(src, &LintConfig::new());
        let json = render_json(src, "demo.mgl", &chk.diagnostics);
        assert!(json.contains("\"code\": \"MAG0201\""), "{json}");
        assert!(json.contains("\"file\": \"demo.mgl\""), "{json}");
        assert!(json.contains("\"start_line\": 1"), "{json}");
        assert!(json.contains("\"error_count\": "), "{json}");
        // Balanced braces as a cheap well-formedness probe.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn clean_program_yields_only_notes() {
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let chk = check_source(src, &LintConfig::new());
        assert_eq!(chk.deny_count(), 0, "{:?}", chk.diagnostics);
        // Shortest path is famously not r-monotonic, recurses through
        // aggregation, and has an additive cost cycle: three notes.
        let codes: Vec<Code> = chk.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::NotRMonotonic), "{codes:?}");
        assert!(codes.contains(&Code::RecursiveAggregation), "{codes:?}");
        assert!(codes.contains(&Code::TerminationUnknown), "{codes:?}");
        assert!(chk.diagnostics.iter().all(|d| d.severity == Severity::Note));
        // ... and deny-all must not escalate them.
        let mut strict = LintConfig::new();
        strict.set_deny_all(true);
        let chk = check_source(src, &strict);
        assert_eq!(chk.deny_count(), 0);
    }

    #[test]
    fn premappable_program_gets_optimization_advisories() {
        let src = r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, C) :- arc(X, Y, C).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
            constraint :- arc(direct, Z, C).
        "#;
        let chk = check_source(src, &LintConfig::new());
        let codes: Vec<Code> = chk.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::Premappable), "{codes:?}");
        assert!(codes.contains(&Code::DemandRestrictable), "{codes:?}");
        assert!(!codes.contains(&Code::PushdownRefused), "{codes:?}");
        let text = render_human(src, "sp.mgl", &chk.diagnostics);
        assert!(text.contains("--optimize=prem"), "{text}");
        // The PreM advisory cites the arXiv line, not Ross & Sagiv.
        assert!(text.contains("arXiv:1910.08888"), "{text}");
        assert!(
            !text.contains("arXiv:1910.08888 (Ross & Sagiv 1992)"),
            "{text}"
        );
    }

    #[test]
    fn refused_pushdown_is_a_note_with_the_reason() {
        // `count` is not the join of any cost domain: pushdown is unsound.
        let src = r#"
            coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
            kc(X, Y) :- knows(X, Y), coming(Y).
            requires(a, 0).
        "#;
        let chk = check_source(src, &LintConfig::new());
        let refusal = chk
            .diagnostics
            .iter()
            .find(|d| d.code == Code::PushdownRefused)
            .expect("MAG0702 reported");
        // A refusal is advisory — the program still evaluates exactly —
        // so deny-all must not turn it into an error (sample programs
        // self-check under `--deny all`).
        assert_eq!(refusal.severity, Severity::Note);
        assert!(refusal.message.contains("refused"), "{}", refusal.message);
        let mut strict = LintConfig::new();
        strict.set_deny_all(true);
        let chk = check_source(src, &strict);
        assert!(chk
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::PushdownRefused)
            .all(|d| d.severity == Severity::Note));
        // An explicit per-code override still escalates or silences it.
        strict.set(Code::PushdownRefused, Severity::Deny);
        let chk = check_source(src, &strict);
        assert!(chk.deny_count() >= 1);
        strict.set(Code::PushdownRefused, Severity::Allow);
        let chk = check_source(src, &strict);
        assert!(chk
            .diagnostics
            .iter()
            .all(|d| d.code != Code::PushdownRefused));
    }
}
