//! Unification and substitution over the (flat) term language.
//!
//! Terms are variables or constants — no function symbols — so unification
//! is a simple union-find-free walk. Used by the conflict-freedom check to
//! unify rule heads restricted to their non-cost arguments (Definition
//! 2.10) and to rename rules apart.

use maglog_datalog::{
    Aggregate, Atom, Builtin, Constraint, Expr, Literal, Program, Rule, Term, Var,
};
use std::collections::HashMap;

/// A substitution from variables to terms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve a term through the substitution (path-compressed walk).
    pub fn resolve(&self, t: Term) -> Term {
        let mut cur = t;
        let mut steps = 0;
        while let Term::Var(v) = cur {
            match self.map.get(&v) {
                Some(&next) if next != cur => {
                    cur = next;
                    steps += 1;
                    debug_assert!(steps <= self.map.len() + 1, "substitution cycle");
                }
                _ => break,
            }
        }
        cur
    }

    pub fn bind(&mut self, v: Var, t: Term) {
        self.map.insert(v, t);
    }

    pub fn get(&self, v: Var) -> Option<Term> {
        self.map.get(&v).map(|&t| self.resolve(t))
    }

    /// Unify two terms under the current substitution. Returns false (and
    /// leaves the substitution in a partially extended state — callers
    /// clone before trying) on clash.
    pub fn unify_terms(&mut self, a: Term, b: Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), t) => {
                self.bind(x, t);
                true
            }
            (t, Term::Var(y)) => {
                self.bind(y, t);
                true
            }
            (Term::Const(c1), Term::Const(c2)) => c1 == c2,
        }
    }

    /// Unify two argument slices pairwise.
    pub fn unify_args(&mut self, a: &[Term], b: &[Term]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b).all(|(&x, &y)| self.unify_terms(x, y))
    }

    pub fn apply_term(&self, t: Term) -> Term {
        self.resolve(t)
    }

    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|&t| self.apply_term(t)).collect(),
            span: a.span,
            arg_spans: a.arg_spans.clone(),
        }
    }

    pub fn apply_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Term(t) => Expr::Term(self.apply_term(*t)),
            Expr::Neg(inner) => Expr::Neg(Box::new(self.apply_expr(inner))),
            Expr::Bin(op, l, r) => Expr::Bin(
                *op,
                Box::new(self.apply_expr(l)),
                Box::new(self.apply_expr(r)),
            ),
        }
    }

    pub fn apply_literal(&self, lit: &Literal) -> Literal {
        match lit {
            Literal::Pos(a) => Literal::Pos(self.apply_atom(a)),
            Literal::Neg(a) => Literal::Neg(self.apply_atom(a)),
            Literal::Builtin(b) => Literal::Builtin(Builtin {
                op: b.op,
                lhs: self.apply_expr(&b.lhs),
                rhs: self.apply_expr(&b.rhs),
                span: b.span,
            }),
            Literal::Agg(agg) => Literal::Agg(Aggregate {
                result: self.apply_term(agg.result),
                eq: agg.eq,
                func: agg.func,
                multiset_var: agg.multiset_var.map(|v| match self.resolve(Term::Var(v)) {
                    Term::Var(w) => w,
                    // A multiset variable bound to a constant cannot occur
                    // in a valid program; keep the original to stay total.
                    Term::Const(_) => v,
                }),
                conjuncts: agg.conjuncts.iter().map(|a| self.apply_atom(a)).collect(),
                span: agg.span,
            }),
        }
    }

    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|l| self.apply_literal(l)).collect(),
            span: r.span,
        }
    }
}

/// Rename every variable of `rule` by appending `suffix`, interning the new
/// names in `program`'s symbol table. Used to make two rules
/// variable-disjoint before unifying their heads.
pub fn rename_apart(program: &Program, rule: &Rule, suffix: &str) -> Rule {
    let mut s = Subst::new();
    for v in rule.all_vars() {
        let fresh = program
            .symbols
            .intern(&format!("{}{suffix}", program.var_name(v)));
        s.bind(v, Term::Var(Var(fresh)));
    }
    s.apply_rule(rule)
}

/// Most general unifier of the *non-cost* head arguments of two rules
/// (already renamed apart). `None` if they do not unify. Per Definition
/// 2.10, the cost arguments are excluded from the unification.
pub fn unify_heads_noncost(program: &Program, r1: &Rule, r2: &Rule) -> Option<Subst> {
    if r1.head.pred != r2.head.pred {
        return None;
    }
    let has_cost = program.is_cost_pred(r1.head.pred);
    let a = r1.head.key_args(has_cost);
    let b = r2.head.key_args(has_cost);
    let mut s = Subst::new();
    if s.unify_args(a, b) {
        Some(s)
    } else {
        None
    }
}

/// Does the conjunction `body` contain an instance of `constraint`'s body?
/// (Definition 2.10, case 2.) We search for a substitution mapping each
/// constraint subgoal onto some literal of `body` syntactically.
pub fn contains_constraint_instance(
    constraint: &Constraint,
    body: &[Literal],
) -> bool {
    fn match_atom(s: &mut Subst, pat: &Atom, target: &Atom) -> bool {
        if pat.pred != target.pred || pat.args.len() != target.args.len() {
            return false;
        }
        // One-way matching: pattern variables bind to target terms; target
        // variables are treated as constants (they name specific terms of
        // the combined body).
        pat.args.iter().zip(&target.args).all(|(&p, &t)| {
            match s.resolve(p) {
                Term::Var(v) => {
                    s.bind(v, t);
                    true
                }
                Term::Const(c) => Term::Const(c) == t,
            }
        })
    }

    fn literal_atoms(lit: &Literal) -> Vec<&Atom> {
        match lit {
            Literal::Pos(a) => vec![a],
            Literal::Agg(agg) => agg.conjuncts.iter().collect(),
            _ => Vec::new(),
        }
    }

    fn search(s: Subst, pats: &[&Atom], targets: &[&Atom]) -> bool {
        let Some((first, rest)) = pats.split_first() else {
            return true;
        };
        for target in targets {
            let mut s2 = s.clone();
            if match_atom(&mut s2, first, target) && search(s2, rest, targets) {
                return true;
            }
        }
        false
    }

    // Constraints over positive atoms only (the common case; negated or
    // built-in constraint subgoals are not used in the paper's examples and
    // would need evaluation rather than matching).
    let pats: Vec<&Atom> = constraint
        .body
        .iter()
        .filter_map(|l| l.as_pos())
        .collect();
    if pats.len() != constraint.body.len() || pats.is_empty() {
        return false;
    }
    let targets: Vec<&Atom> = body.iter().flat_map(literal_atoms).collect();
    search(Subst::new(), &pats, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maglog_datalog::parse_program;

    #[test]
    fn unifies_simple_heads() {
        let p = parse_program(
            r#"
            declare pred cv/4 cost nonneg_real.
            cv(X, X, Y, M) :- s(X, Y, M).
            cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
            "#,
        )
        .unwrap();
        let r2 = rename_apart(&p, &p.rules[1], "_2");
        let theta = unify_heads_noncost(&p, &p.rules[0], &r2).expect("heads unify");
        let h1 = theta.apply_atom(&p.rules[0].head);
        let h2 = theta.apply_atom(&r2.head);
        // Non-cost prefixes must be identical after unification.
        assert_eq!(h1.args[..3], h2.args[..3]);
        // Cost args remain distinct variables.
        assert_ne!(h1.args[3], h2.args[3]);
    }

    #[test]
    fn clashing_constants_do_not_unify() {
        let p = parse_program(
            r#"
            p(a, C) :- q(C).
            p(b, C) :- r(C).
            "#,
        )
        .unwrap();
        let r2 = rename_apart(&p, &p.rules[1], "_2");
        // Heads p(a, C) and p(b, C2): non-cost args [a] vs [b] clash.
        // (p is not declared a cost pred, so all args count as non-cost and
        // the C/C2 unification succeeds while a/b fails.)
        assert!(unify_heads_noncost(&p, &p.rules[0], &r2).is_none());
    }

    #[test]
    fn rename_apart_makes_rules_disjoint() {
        let p = parse_program("p(X, Y) :- q(X, Y).").unwrap();
        let renamed = rename_apart(&p, &p.rules[0], "_fresh");
        let orig_vars: std::collections::HashSet<_> =
            p.rules[0].all_vars().into_iter().collect();
        for v in renamed.all_vars() {
            assert!(!orig_vars.contains(&v));
        }
    }

    #[test]
    fn resolve_follows_chains() {
        let p = parse_program("p(X, Y, Z) :- q(X, Y, Z).").unwrap();
        let vars = p.rules[0].all_vars();
        let (x, y, z) = (vars[0], vars[1], vars[2]);
        let mut s = Subst::new();
        s.bind(x, Term::Var(y));
        s.bind(y, Term::Var(z));
        assert_eq!(s.resolve(Term::Var(x)), Term::Var(z));
    }

    #[test]
    fn constraint_instance_detection_example_2_5() {
        // Combined body contains arc(direct, Y, C2) which instantiates
        // the constraint :- arc(direct, Z, C).
        let p = parse_program(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X, direct, Y, D) :- arc(X, Y, D).
            path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
            constraint :- arc(direct, Z, C).
            "#,
        )
        .unwrap();
        // Build the combined body with Z unified to `direct` as in the
        // paper: body of rule 1 plus body of rule 2 with Z := direct.
        let r2 = rename_apart(&p, &p.rules[1], "_2");
        let theta = unify_heads_noncost(&p, &p.rules[0], &r2).unwrap();
        let mut combined: Vec<Literal> = p.rules[0]
            .body
            .iter()
            .map(|l| theta.apply_literal(l))
            .collect();
        combined.extend(r2.body.iter().map(|l| theta.apply_literal(l)));
        assert!(contains_constraint_instance(&p.constraints[0], &combined));
    }

    #[test]
    fn constraint_instance_absent_when_bodies_clean() {
        let p = parse_program(
            r#"
            p(X) :- q(X).
            constraint :- r(X).
            "#,
        )
        .unwrap();
        assert!(!contains_constraint_instance(
            &p.constraints[0],
            &p.rules[0].body
        ));
    }

    #[test]
    fn multi_subgoal_constraint_requires_all_parts() {
        let p = parse_program(
            r#"
            w(G) :- gate(G, or_kind), gate(G, and_kind).
            x(G) :- gate(G, or_kind).
            constraint :- gate(G, or_kind), gate(G, and_kind).
            "#,
        )
        .unwrap();
        assert!(contains_constraint_instance(
            &p.constraints[0],
            &p.rules[0].body
        ));
        assert!(!contains_constraint_instance(
            &p.constraints[0],
            &p.rules[1].body
        ));
    }
}
