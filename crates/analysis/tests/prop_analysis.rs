#![cfg(feature = "proptest")]
//! Property tests for the static analyses: FD closure laws, containment
//! mappings on systematically renamed/specialized rules, and stability of
//! the verdicts under variable renaming.

use maglog_analysis::containment::containment_mapping_exists;
use maglog_analysis::fd::{closure, implies, Fd};
use maglog_analysis::unify::rename_apart;
use maglog_analysis::{check_program, is_cost_respecting};
use maglog_datalog::{parse_program, Sym, Var};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn var_set(ids: &[u32]) -> BTreeSet<Var> {
    ids.iter().map(|&i| Var(Sym(i))).collect()
}

fn fd_strategy() -> impl Strategy<Value = Vec<Fd>> {
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..8, 0..3),
            prop::collection::btree_set(0u32..8, 1..3),
        ),
        0..6,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(l, r)| {
                Fd::new(
                    l.into_iter().map(|i| Var(Sym(i))),
                    r.into_iter().map(|i| Var(Sym(i))),
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn closure_is_extensive_monotone_idempotent(
        fds in fd_strategy(),
        attrs in prop::collection::btree_set(0u32..8, 0..5),
        more in prop::collection::btree_set(0u32..8, 0..3),
    ) {
        let a = var_set(&attrs.iter().copied().collect::<Vec<_>>());
        let c = closure(&a, &fds);
        // Extensive: X ⊆ X⁺.
        prop_assert!(a.is_subset(&c));
        // Idempotent: (X⁺)⁺ = X⁺.
        prop_assert_eq!(closure(&c, &fds), c.clone());
        // Monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
        let mut bigger = a.clone();
        bigger.extend(more.iter().map(|&i| Var(Sym(i))));
        prop_assert!(c.is_subset(&closure(&bigger, &fds)));
    }

    #[test]
    fn implies_respects_armstrong_reflexivity(
        fds in fd_strategy(),
        attrs in prop::collection::btree_set(0u32..8, 1..5),
    ) {
        // X → Y for every Y ⊆ X, regardless of the FD set.
        let ids: Vec<u32> = attrs.iter().copied().collect();
        let lhs = var_set(&ids);
        let rhs = var_set(&ids[..ids.len() / 2 + 1]);
        prop_assert!(implies(&fds, &lhs, &rhs));
    }

    #[test]
    fn declared_fds_are_implied(fds in fd_strategy()) {
        for fd in &fds {
            prop_assert!(implies(&fds, &fd.lhs, &fd.rhs));
        }
    }
}

// ---- Containment mappings ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_rule_contains_its_own_renaming(seed in 0u32..1000) {
        // A renamed-apart copy of a rule is contained both ways.
        let src = format!(
            "p{0}(X, Y, C) :- q(X, Z), r(Z, Y, C), s(Y).",
            seed % 7
        );
        let p = parse_program(&src).unwrap();
        let rule = &p.rules[0];
        let renamed = rename_apart(&p, rule, "_fresh");
        prop_assert!(containment_mapping_exists(rule, &renamed));
        prop_assert!(containment_mapping_exists(&renamed, rule));
    }

    #[test]
    fn specialization_is_contained_one_way(n_extra in 1usize..4) {
        // r2 = r1 plus extra subgoals: containment r1 → r2 holds (r2's
        // tuples ⊆ r1's), but not the converse.
        let extra: Vec<String> = (0..n_extra).map(|i| format!("e{i}(X)")).collect();
        let src = format!(
            "p(X, Y) :- q(X, Y).\np(X, Y) :- q(X, Y), {}.",
            extra.join(", ")
        );
        let p = parse_program(&src).unwrap();
        prop_assert!(containment_mapping_exists(&p.rules[0], &p.rules[1]));
        prop_assert!(!containment_mapping_exists(&p.rules[1], &p.rules[0]));
    }
}

// ---- Verdict stability under renaming ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn verdicts_are_stable_under_variable_renaming(suffix in "[a-z]{1,6}") {
        let src = format!(
            r#"
            declare pred arc/3 cost min_real.
            declare pred path/4 cost min_real.
            declare pred s/3 cost min_real.
            path(X{s}, direct, Y{s}, C{s}) :- arc(X{s}, Y{s}, C{s}).
            path(X{s}, Z{s}, Y{s}, C{s}) :- s(X{s}, Z{s}, C1{s}), arc(Z{s}, Y{s}, C2{s}), C{s} = C1{s} + C2{s}.
            s(X{s}, Y{s}, C{s}) :- C{s} =r min D{s} : path(X{s}, Z{s}, Y{s}, D{s}).
            constraint :- arc(direct, Z{s}, C{s}).
            "#,
            s = suffix.to_uppercase()
        );
        let p = parse_program(&src).unwrap();
        let r = check_program(&p);
        prop_assert!(r.is_range_restricted());
        prop_assert!(r.is_conflict_free());
        prop_assert!(r.is_monotonic());
        prop_assert!(!r.is_r_monotonic());
        for rule in &p.rules {
            prop_assert!(is_cost_respecting(&p, rule));
        }
    }
}
