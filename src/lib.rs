//! # maglog — Monotonic Aggregation in Deductive Databases
//!
//! A Rust implementation of Ross & Sagiv's lattice-based semantics for
//! recursive aggregation (PODS 1992), with the full static-analysis battery
//! of the paper and the competing semantics of its Section 5 as executable
//! baselines.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`lattice`] — complete lattices (Figure 1 domains) and multisets;
//! * [`datalog`] — AST, parser, and program/component structure;
//! * [`analysis`] — range restriction, cost-respecting / conflict-freedom,
//!   well-formedness, admissibility, r-monotonicity;
//! * [`engine`] — the monotonic fixpoint engine (`T_P`, naive & semi-naive
//!   evaluation, iterated minimal models);
//! * [`baselines`] — stratified evaluation, Kemp–Stuckey well-founded and
//!   stable semantics, Ganguly–Greco–Zaniolo rewriting, and direct
//!   algorithms (Dijkstra et al.);
//! * [`workloads`] — paper programs and synthetic instance generators;
//! * [`bench`] — the measurement harness behind `maglog bench` and the
//!   experiments binary (statistics, the `maglog-bench-v2` schema, and
//!   regression gating).
//!
//! ## Quickstart
//!
//! ```
//! use maglog::prelude::*;
//!
//! let program = parse_program(
//!     r#"
//!     declare pred s/3 cost min_real.
//!     declare pred path/4 cost min_real.
//!     path(X, direct, Y, C) :- arc(X, Y, C).
//!     path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
//!     s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
//!     declare pred arc/3 cost min_real.
//!     constraint :- arc(direct, Z, C).
//!     "#,
//! )
//! .unwrap();
//!
//! let mut edb = Edb::new();
//! edb.push_cost_fact(&program, "arc", &["a", "b"], 1.0);
//! edb.push_cost_fact(&program, "arc", &["b", "b"], 0.0);
//!
//! let model = MonotonicEngine::new(&program).evaluate(&edb).unwrap();
//! let s_ab = model.cost_of(&program, "s", &["a", "b"]).unwrap();
//! assert_eq!(s_ab.as_f64(), Some(1.0));
//! ```

pub use maglog_analysis as analysis;
pub use maglog_baselines as baselines;
pub use maglog_bench as bench;
pub use maglog_datalog as datalog;
pub use maglog_engine as engine;
pub use maglog_lattice as lattice;
pub use maglog_prng as prng;
pub use maglog_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::analysis::{admissibility_report, check_program, AnalysisReport};
    pub use crate::datalog::{parse_program, Program};
    pub use crate::engine::{CostValue, Edb, EvalOptions, Model, MonotonicEngine};
    pub use crate::lattice::{CompleteLattice, JoinSemiLattice, Poset};
}
