//! `maglog` — command-line driver for the monotonic-aggregation engine.
//!
//! ```text
//! maglog check  <program.mgl>            run the static battery and report
//! maglog run    <program.mgl> [pred...]  evaluate; print the model (or just preds)
//! maglog compare <program.mgl>           minimal model vs Kemp–Stuckey WFS
//! maglog explain <program.mgl>           components, CDB/LDB, plans-eye view
//! ```
//!
//! Programs are text files in the maglog rule language; facts can be given
//! inline (`arc(a, b, 1).`). Exit code is nonzero on parse/analysis/
//! evaluation failure, so `maglog check` works in CI.

use maglog::analysis::check_program;
use maglog::baselines::kemp_stuckey::{ks_well_founded, AtomStatus};
use maglog::datalog::{graph::components, parse_program, Program};
use maglog::engine::{Edb, MonotonicEngine};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match (cmd, rest) {
        ("check", [path]) => cmd_check(path),
        ("run", [path, preds @ ..]) => cmd_run(path, preds),
        ("compare", [path]) => cmd_compare(path),
        ("explain", [path]) => cmd_explain(path),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: maglog <check|run|compare|explain> <program.mgl> [pred...]";

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(path: &str) -> Result<(), String> {
    let program = load(path)?;
    let report = check_program(&program);
    print!("{}", report.summary(&program));
    if report.evaluable() {
        println!("verdict: evaluable (unique minimal model exists)");
        Ok(())
    } else {
        Err("program is not certified monotonic".into())
    }
}

fn cmd_run(path: &str, preds: &[String]) -> Result<(), String> {
    let program = load(path)?;
    let model = MonotonicEngine::new(&program)
        .evaluate(&Edb::new())
        .map_err(|e| e.to_string())?;
    if preds.is_empty() {
        println!("{}", model.render(&program));
    } else {
        for pred in preds {
            for (key, cost) in model.tuples_of(&program, pred) {
                let mut parts: Vec<String> =
                    key.iter().map(|v| v.display(&program)).collect();
                if let Some(c) = cost {
                    parts.push(c.display(&program));
                }
                println!("{pred}({})", parts.join(", "));
            }
        }
    }
    let rounds: usize = model.stats().rounds.iter().sum();
    eprintln!(
        "-- {} atoms, {} rounds, {} firings",
        model.interp().size(),
        rounds,
        model.stats().firings
    );
    Ok(())
}

fn cmd_compare(path: &str) -> Result<(), String> {
    let program = load(path)?;
    let model = MonotonicEngine::new(&program)
        .evaluate(&Edb::new())
        .map_err(|e| e.to_string())?;
    let ks = ks_well_founded(&program, &Edb::new())?;
    println!(
        "minimal model: {} atoms;  K&S WFS: {} true / {} false / {} undefined",
        model.interp().size(),
        ks.count(AtomStatus::True),
        ks.count(AtomStatus::False),
        ks.count(AtomStatus::Undefined),
    );
    // Show where the minimal model decides what K&S cannot.
    let mut shown = 0;
    for pred in program.all_preds() {
        let name = program.pred_name(pred);
        for key in ks.undefined_keys(&program, &name) {
            if shown >= 20 {
                println!("  ... (more undefined atoms elided)");
                return Ok(());
            }
            let keys: Vec<String> = key.0.iter().map(|v| v.display(&program)).collect();
            let keyrefs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let ours = model
                .cost_of(&program, &name, &keyrefs)
                .map(|v| format!("true ({v})"))
                .unwrap_or_else(|| {
                    if model.holds(&program, &name, &keyrefs) {
                        "true".into()
                    } else {
                        "false".into()
                    }
                });
            println!(
                "  {name}({}) — K&S: undefined, minimal model: {ours}",
                keys.join(", ")
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  (K&S is two-valued here; Proposition 6.1 says the models agree)");
    }
    Ok(())
}

fn cmd_explain(path: &str) -> Result<(), String> {
    let program = load(path)?;
    println!("{} rules, {} constraints, {} inline facts",
        program.rules.len(), program.constraints.len(), program.facts.len());
    for (i, comp) in components(&program).iter().enumerate() {
        let preds: Vec<String> = comp.preds.iter().map(|p| program.pred_name(*p)).collect();
        let ldb: Vec<String> = comp
            .ldb_preds(&program)
            .iter()
            .map(|p| program.pred_name(*p))
            .collect();
        println!(
            "component {i}: CDB {{{}}} over LDB {{{}}}{}{}",
            preds.join(", "),
            ldb.join(", "),
            if comp.recursive_aggregation {
                "  [recursion through aggregation]"
            } else {
                ""
            },
            if comp.recursive_negation {
                "  [recursion through negation]"
            } else {
                ""
            },
        );
        for &ri in &comp.rule_indices {
            println!("    {}", program.display_rule(&program.rules[ri]));
        }
    }
    Ok(())
}
