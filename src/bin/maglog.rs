//! `maglog` — command-line driver for the monotonic-aggregation engine.
//!
//! ```text
//! maglog check  [opts] <program.mgl>     run the static battery and report
//! maglog run    [opts] <program.mgl> [pred...]  evaluate; print the model
//! maglog profile [opts] <program.mgl>    fixpoint profiler (maglog-profile-v1)
//! maglog bench  [opts]                   benchmark matrix (maglog-bench-v2)
//! maglog compare <program.mgl>           minimal model vs Kemp–Stuckey WFS
//! maglog explain <program.mgl>           components, CDB/LDB, plans-eye view
//! maglog explain [opts] <program.mgl> '<fact>'   why / why-not a fact
//! maglog diff [opts] <before> <after>    compare two telemetry documents
//! maglog trace-validate <trace.json>     check a maglog-trace-v1 document
//! maglog trace-flame <trace.json>        collapsed stacks for flame-graph tools
//! maglog metrics-validate <out.prom>     check an OpenMetrics 1.0 exposition
//! ```
//!
//! `diff` options:
//!
//! ```text
//! --format=human|json   ranked report, or the maglog-diff-v1 document
//! --gate RATIO          exit 1 when any regression exceeds RATIO
//! ```
//!
//! `check` options:
//!
//! ```text
//! --format=human|json   rendering of the diagnostics (default: human)
//! --deny <CODE|all>     escalate a lint code to deny (all/warnings: every warning)
//! --allow <CODE>        silence a lint code entirely
//! --explain <CODE>      print the long-form description of a lint code
//! ```
//!
//! `profile` options:
//!
//! ```text
//! --format=human|json          human trace+report, or maglog-profile-v1 JSON
//! --strategy=naive|seminaive|greedy   profile one strategy (default: all three)
//! --parallel[=N]               evaluate with N workers (bare: every core)
//! --trace <FILE>               span timeline as Chrome trace JSON (docs/tracing.md)
//! --metrics <FILE>             latency/size histograms as OpenMetrics 1.0 text
//! --listen <ADDR>              serve live GET /metrics during (and after) the run
//! ```
//!
//! `explain` options (goal form):
//!
//! ```text
//! --why-not                    report why the fact was NOT derived
//! --format=human|json|dot      tree text, maglog-explain-v1 JSON, or Graphviz
//! --depth <N>                  bound the rendered derivation tree (default 8)
//! ```
//!
//! `run` options: `--stats` (profiler report on stderr, plus a per-phase
//! parse/analyze/plan/eval wall-clock and allocation split), `--explain
//! <pred>` (dump derivations + aggregate witnesses of every tuple of
//! `pred`), `--max-rounds <N>` (per-component fixpoint cap),
//! `--optimize[=prem,demand]` (opt-in proven rewrites; decisions are
//! reported on stderr), `--parallel[=N]` (shard rounds across N workers;
//! bare `--parallel` uses every core; the model is identical either way),
//! `--query '<fact>'` (answer one ground point query; with
//! `--optimize=demand` only the goal's derivation cone is computed),
//! `--trace <FILE>` (write a `maglog-trace-v1` span timeline — phases,
//! components, rounds, rule firings, worker lanes — loadable in Perfetto),
//! `--metrics <FILE>` (write per-rule/round/worker latency histograms as
//! OpenMetrics 1.0 text; see docs/metrics.md).
//!
//! `bench` options:
//!
//! ```text
//! --samples N           timed samples per cell (default 5)
//! --warmup N            untimed warm-up runs per cell (default 1)
//! --workloads a,b       restrict to these workloads
//! --sizes n,m           restrict to these sizes
//! --format=human|json   table, or the maglog-bench-v2 document on stdout
//! --out FILE            also write the v2 document to FILE
//! --baseline FILE       gate medians against a v1/v2 baseline document
//! --gate RATIO          regression threshold (default 1.25; needs --baseline)
//! --parallel[=N]        N-worker evaluation plus a 1,2,4,...,N scaling curve
//! --trace FILE          trace the per-cell instrumented runs (timed samples
//!                       stay untraced, so medians are unperturbed)
//! --metrics FILE        OpenMetrics histograms from the instrumented runs
//!                       (labeled workload/size/strategy; timed samples stay
//!                       uninstrumented)
//! ```
//!
//! Programs are text files in the maglog rule language; facts can be given
//! inline (`arc(a, b, 1).`). Exit codes: 0 on success, 1 when `check`
//! finds deny-level diagnostics (or evaluation fails), 2 on usage errors —
//! so `maglog check --deny all` works in CI.

use maglog::analysis::diag::{
    check_source, render_human, render_json, Code, LintConfig, Severity, SourceCheck,
};
use maglog::baselines::kemp_stuckey::{ks_well_founded, AtomStatus};
use maglog::bench::v2;
use maglog::datalog::{graph::components, parse_program, Program};
use maglog::engine::trace::{NameRef, MAIN_LANE};
use maglog::engine::{
    alloc, available_workers, diff_documents, explain_tree, fmt_bytes, parse_document,
    parse_goal, parse_openmetrics, render_collapsed_stacks, render_explain_dot,
    render_explain_human, render_explain_json, render_profile_json, render_why_not_human,
    render_why_not_json, validate_chrome_trace, why_not, Document, Edb, EvalOptions, Fanout,
    HistogramSink, MetricSet, MetricsServer, MetricsSink, Model, MonotonicEngine, Optimize,
    Registry, SpanSink, Strategy, TraceSink, Tracer, Tuple, TRACE_SCHEMA,
};
use std::process::ExitCode;

/// Count heap traffic so `profile`, `run --stats`, and `bench` report real
/// allocator figures (library code reads zeros without this install).
#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

const USAGE: &str = "\
usage: maglog <check|run|profile|bench|diff|compare|explain> [args]

  check   [--format=human|json] [--deny <CODE|all|warnings>] [--allow <CODE>] <program.mgl>
  check   --explain <CODE>
  run     [--stats] [--explain <pred>] [--max-rounds <N>] [--optimize[=prem,demand]]
          [--parallel[=N]] [--query '<fact>'] [--trace <FILE>] [--metrics <FILE>]
          <program.mgl> [pred...]
  profile [--format=human|json] [--strategy=naive|seminaive|greedy]
          [--optimize[=prem,demand]] [--parallel[=N]] [--trace <FILE>]
          [--metrics <FILE>] [--listen <ADDR>] <program.mgl>
  bench   [--samples <N>] [--warmup <N>] [--workloads <a,b>] [--sizes <n,m>]
          [--format=human|json] [--out <FILE>] [--baseline <FILE>] [--gate <RATIO>]
          [--optimize[=prem,demand]] [--parallel[=N]] [--trace <FILE>] [--metrics <FILE>]
  diff    [--format=human|json] [--gate <RATIO>] <before> <after>
  compare <program.mgl>
  explain <program.mgl>
  explain [--why-not] [--format=human|json|dot] [--depth <N>] <program.mgl> '<fact>'
  trace-validate <trace.json>
  trace-flame <trace.json>
  metrics-validate <metrics.prom>

profile evaluates under every strategy (or just --strategy) and reports
per-round deltas, per-rule counters, index telemetry, and memory (per-
relation heap estimates plus allocator peaks); --format=json emits the
maglog-profile-v1 document. run --stats appends the same report for the
default strategy to stderr; run --explain <pred> dumps the derivation
(with aggregate witnesses) of every tuple of <pred>.

bench measures the built-in workload matrix (shortest_path,
company_control, circuit, party) under all three strategies: median, min,
and MAD over --samples timed runs, throughput, and peak heap per cell.
--format=json prints the maglog-bench-v2 document; with --baseline the
run's medians are gated against a committed v1 or v2 document and any
cell slower than baseline x RATIO (default 1.25) fails the run; the
failure enumerates every offending cell and which work counters moved.

diff compares two telemetry captures of the same kind — maglog-profile-v1
or maglog-bench-v2 JSON, or an OpenMetrics exposition (the kind is
sniffed) — and reports what changed, worst regressions first, with
noise-aware significance (bench deltas below the measured MAD, allocator
figures within 2%, and histogram quantiles within bucket resolution are
not flagged); see docs/diffing.md. --format=json emits the stable
maglog-diff-v1 document; --gate RATIO exits 1 when any regression exceeds
RATIO. Exit codes: 0 clean (or no gate), 1 gated regression, 2 on
unreadable/mismatched documents.

trace-flame folds a maglog-trace-v1 timeline into collapsed-stack lines
(lane;span;...;span <self-nanos>) for inferno or speedscope; it accepts
exactly the documents trace-validate accepts.

explain with a quoted fact answers WHY it holds — a depth-bounded
derivation tree with rule firings, cost-refinement history, and aggregate
witnesses (--format=json emits maglog-explain-v1; dot emits Graphviz).
With --why-not it reports, per candidate rule, the first body subgoal that
fails. A goal is written like s(a, b) or s(a, b, 3) (cost optional).

Lint codes are the stable MAGxxxx identifiers listed in docs/lint-codes.md;
check --explain MAGxxxx prints the long-form description of any code.
--deny warnings (or all) escalates warn-level findings to errors; notes
are never escalated, so an all-notes program still exits 0.

--optimize enables proven rewrites (see docs/optimization.md): prem prunes
derivations dominated under a premappable aggregate, demand restricts a
--query point goal to its derivation cone. Both are gated on their static
proofs and never change the computed model.

--parallel[=N] shards each fixpoint round across N workers (bare
--parallel uses every core; see docs/parallelism.md). The computed model
and every counter are identical at any worker count. On bench, --parallel=N
additionally measures a 1, 2, 4, ... N scaling curve per workload.

--trace <FILE> records a span timeline — phases, components, rounds, rule
firings, and (under --parallel) per-worker fire/barrier-wait/merge lanes,
plus heap and delta counter tracks — as Chrome trace-event JSON
(maglog-trace-v1), loadable in Perfetto or chrome://tracing; see
docs/tracing.md. trace-validate checks such a document structurally
(balanced spans per lane, monotone timestamps, named lanes).

--metrics <FILE> records log-linear latency/size histograms (per-rule
firing latency, round duration, barrier wait, merged-buffer sizes, heap)
plus work counters, and writes them as OpenMetrics 1.0 text — even when
evaluation fails, so aborted runs can be diagnosed; see docs/metrics.md.
profile additionally summarizes the histograms as p50/p90/p99/max blocks,
and profile --listen <ADDR> serves live GET /metrics snapshots (updated at
round barriers) while the evaluation runs, then keeps serving the final
snapshot until interrupted. ADDR is host:port; port 0 picks a free port
(the bound address is printed on stderr). metrics-validate checks an
exposition against the bundled OpenMetrics parser and exits 1 on any
violation, so CI can hard-fail malformed output.";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

struct CheckOpts {
    format: Format,
    config: LintConfig,
    /// Print the long-form description of this code instead of checking.
    explain: Option<Code>,
}

enum ArgError {
    Usage(String),
}

/// Split flags from operands. Flags take their value either as
/// `--flag=value` or from the next argument.
fn parse_check_opts(args: &[String]) -> Result<(CheckOpts, Vec<String>), ArgError> {
    let mut opts = CheckOpts {
        format: Format::Human,
        config: LintConfig::new(),
        explain: None,
    };
    let mut operands = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => {
                        return Err(ArgError::Usage(format!("unknown format '{other}'")))
                    }
                };
            }
            "--deny" => {
                let v = value("--deny")?;
                // `warnings` is the CI-friendly spelling of `all`: both
                // escalate warn-level codes only, never notes.
                if v == "all" || v == "warnings" {
                    opts.config.set_deny_all(true);
                } else {
                    let code = parse_code(&v)?;
                    opts.config.set(code, Severity::Deny);
                }
            }
            "--allow" => {
                let code = parse_code(&value("--allow")?)?;
                opts.config.set(code, Severity::Allow);
            }
            "--explain" => {
                opts.explain = Some(parse_code(&value("--explain")?)?);
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            _ => operands.push(arg.clone()),
        }
    }
    Ok((opts, operands))
}

fn parse_code(s: &str) -> Result<Code, ArgError> {
    Code::parse(s).ok_or_else(|| ArgError::Usage(format!("unknown lint code '{s}'")))
}

/// Parse `--parallel`'s inline value. A bare `--parallel` (no value)
/// uses every available core; like `--optimize`, the flag never consumes
/// the next argument. `--parallel=1` is the sequential evaluator.
fn parse_parallel(inline_value: Option<&str>) -> Result<usize, ArgError> {
    match inline_value {
        None => Ok(available_workers()),
        Some(v) if v.trim().is_empty() => Ok(available_workers()),
        Some(v) => v
            .trim()
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| {
                ArgError::Usage(format!(
                    "--parallel wants a positive worker count, got '{v}'"
                ))
            }),
    }
}

/// Validate an output-file destination (`--trace`, `--metrics`) up
/// front: a missing or unwritable path is a usage error (exit 2, like
/// every other bad flag value), not something to discover only after a
/// long evaluation. Opens the file for writing (creating it, truncating
/// nothing) so permission problems surface before any work runs.
fn check_out_path(flag: &str, path: &str) -> Result<(), ArgError> {
    if path.trim().is_empty() {
        return Err(ArgError::Usage(format!("{flag} requires a file path")));
    }
    std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map(drop)
        .map_err(|e| ArgError::Usage(format!("{flag}: cannot write {path}: {e}")))
}

/// Parse `--optimize`'s inline value. A bare `--optimize` (no value)
/// enables every rewrite; the flag never consumes the next argument, so
/// `maglog run --optimize prog.mgl` does the expected thing.
fn parse_optimize(inline_value: Option<&str>) -> Result<Optimize, ArgError> {
    match inline_value {
        None => Ok(Optimize::all()),
        Some(v) if v.trim().is_empty() => Ok(Optimize::all()),
        Some(v) => Optimize::parse(v).ok_or_else(|| {
            ArgError::Usage(format!(
                "unknown rewrite in '--optimize={v}' (expected a comma list of: prem, demand)"
            ))
        }),
    }
}

fn usage_exit(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage_exit(""),
    };
    if cmd == "check" {
        let (opts, operands) = match parse_check_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        if let Some(code) = opts.explain {
            if !operands.is_empty() {
                return usage_exit("check --explain takes no program file");
            }
            print!("{}", explain_code(code));
            return ExitCode::SUCCESS;
        }
        let [path] = operands.as_slice() else {
            return usage_exit("check takes exactly one program file");
        };
        return match cmd_check(path, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "profile" {
        let (opts, operands) = match parse_profile_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        let [path] = operands.as_slice() else {
            return usage_exit("profile takes exactly one program file");
        };
        return match cmd_profile(path, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "run" {
        let (opts, operands) = match parse_run_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        let Some((path, preds)) = operands.split_first() else {
            return usage_exit("run requires a program file");
        };
        return match cmd_run(path, preds, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "bench" {
        let opts = match parse_bench_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        let cfg = v2::BenchConfig {
            samples: opts.samples,
            warmup: opts.warmup,
            workloads: opts.workloads.clone(),
            sizes: opts.sizes.clone(),
            optimize: opts.optimize,
            workers: opts.parallel,
            scaling: v2::scaling_curve(opts.parallel),
            trace: opts.trace.as_ref().map(|_| Tracer::new()),
            metrics: opts.metrics.as_ref().map(|_| Registry::new()),
        };
        // Filter problems (unknown workloads, sizes matching nothing) are
        // usage errors, caught before any measurement runs.
        if let Err(msg) = v2::plan(&cfg) {
            return usage_exit(&msg);
        }
        return match cmd_bench(&cfg, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "explain" {
        let (opts, operands) = match parse_explain_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        let result = match operands.as_slice() {
            [path, goal] => cmd_explain_goal(path, goal, &opts),
            [path] if !opts.why_not && opts.format == ExplainFormat::Human => {
                // Structure view (components, CDB/LDB, rules) — no goal.
                cmd_explain(path)
            }
            [_path] => {
                return usage_exit("explain flags require a goal fact, e.g. 's(a, b)'")
            }
            _ => return usage_exit("explain takes a program file and an optional goal fact"),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "diff" {
        let (opts, operands) = match parse_diff_opts(rest) {
            Ok(x) => x,
            Err(ArgError::Usage(msg)) => return usage_exit(&msg),
        };
        let [before, after] = operands.as_slice() else {
            return usage_exit("diff takes exactly two telemetry documents");
        };
        return cmd_diff(before, after, &opts);
    }
    // The other subcommands take no flags.
    if let Some(flag) = rest.iter().find(|a| a.starts_with('-')) {
        return usage_exit(&format!("unknown flag '{flag}'"));
    }
    let result = match (cmd, rest) {
        ("compare", [path]) => cmd_compare(path),
        ("compare", _) => return usage_exit("compare requires a program file"),
        ("trace-validate", [path]) => cmd_trace_validate(path),
        ("trace-validate", _) => return usage_exit("trace-validate requires a trace file"),
        ("trace-flame", [path]) => cmd_trace_flame(path),
        ("trace-flame", _) => return usage_exit("trace-flame requires a trace file"),
        ("metrics-validate", [path]) => cmd_metrics_validate(path),
        ("metrics-validate", _) => {
            return usage_exit("metrics-validate requires an OpenMetrics file")
        }
        _ => return usage_exit(&format!("unknown subcommand '{cmd}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct ProfileOpts {
    format: Format,
    /// `None` profiles all three strategies.
    strategy: Option<Strategy>,
    optimize: Optimize,
    /// Worker count for the parallel evaluator (1 = sequential).
    parallel: usize,
    /// Write a `maglog-trace-v1` span timeline here.
    trace: Option<String>,
    /// Write an OpenMetrics 1.0 exposition here.
    metrics: Option<String>,
    /// Serve live `GET /metrics` snapshots on this address.
    listen: Option<String>,
}

fn parse_profile_opts(args: &[String]) -> Result<(ProfileOpts, Vec<String>), ArgError> {
    let mut opts = ProfileOpts {
        format: Format::Human,
        strategy: None,
        optimize: Optimize::default(),
        parallel: 1,
        trace: None,
        metrics: None,
        listen: None,
    };
    let mut operands = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => {
                        return Err(ArgError::Usage(format!("unknown format '{other}'")))
                    }
                };
            }
            "--strategy" => {
                let v = value("--strategy")?;
                opts.strategy = Some(Strategy::parse(&v).ok_or_else(|| {
                    ArgError::Usage(format!("unknown strategy '{v}'"))
                })?);
            }
            "--optimize" => opts.optimize = parse_optimize(inline_value.as_deref())?,
            "--parallel" => opts.parallel = parse_parallel(inline_value.as_deref())?,
            "--trace" => {
                let v = value("--trace")?;
                check_out_path("--trace", &v)?;
                opts.trace = Some(v);
            }
            "--metrics" => {
                let v = value("--metrics")?;
                check_out_path("--metrics", &v)?;
                opts.metrics = Some(v);
            }
            "--listen" => {
                let v = value("--listen")?;
                if v.trim().is_empty() {
                    return Err(ArgError::Usage("--listen requires host:port".into()));
                }
                opts.listen = Some(v);
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            _ => operands.push(arg.clone()),
        }
    }
    Ok((opts, operands))
}

struct BenchOpts {
    samples: usize,
    warmup: usize,
    workloads: Vec<String>,
    sizes: Vec<usize>,
    format: Format,
    out: Option<String>,
    baseline: Option<String>,
    gate: f64,
    optimize: Optimize,
    /// Worker count for the parallel evaluator (1 = sequential). Values
    /// above 1 also measure the scaling curve 1, 2, 4, … up to this count.
    parallel: usize,
    /// Write a `maglog-trace-v1` span timeline of the instrumented runs.
    trace: Option<String>,
    /// Write an OpenMetrics exposition of the instrumented runs.
    metrics: Option<String>,
}

fn parse_bench_opts(args: &[String]) -> Result<BenchOpts, ArgError> {
    let mut opts = BenchOpts {
        samples: 5,
        warmup: 1,
        workloads: Vec::new(),
        sizes: Vec::new(),
        format: Format::Human,
        out: None,
        baseline: None,
        gate: 1.25,
        optimize: Optimize::default(),
        parallel: 1,
        trace: None,
        metrics: None,
    };
    let mut gate_set = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--samples" => {
                let v = value("--samples")?;
                opts.samples = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| {
                        ArgError::Usage(format!("--samples needs a positive integer, got '{v}'"))
                    })?;
            }
            "--warmup" => {
                let v = value("--warmup")?;
                opts.warmup = v.parse().map_err(|_| {
                    ArgError::Usage(format!("--warmup needs a non-negative integer, got '{v}'"))
                })?;
            }
            "--workloads" => {
                let v = value("--workloads")?;
                opts.workloads = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if opts.workloads.is_empty() {
                    return Err(ArgError::Usage("--workloads needs at least one name".into()));
                }
            }
            "--sizes" => {
                let v = value("--sizes")?;
                let mut sizes = Vec::new();
                for part in v.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    sizes.push(part.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(
                        || {
                            ArgError::Usage(format!(
                                "--sizes wants positive integers, got '{part}'"
                            ))
                        },
                    )?);
                }
                if sizes.is_empty() {
                    return Err(ArgError::Usage("--sizes needs at least one size".into()));
                }
                opts.sizes = sizes;
            }
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => {
                        return Err(ArgError::Usage(format!("unknown format '{other}'")))
                    }
                };
            }
            "--out" => opts.out = Some(value("--out")?),
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--optimize" => opts.optimize = parse_optimize(inline_value.as_deref())?,
            "--parallel" => opts.parallel = parse_parallel(inline_value.as_deref())?,
            "--trace" => {
                let v = value("--trace")?;
                check_out_path("--trace", &v)?;
                opts.trace = Some(v);
            }
            "--metrics" => {
                let v = value("--metrics")?;
                check_out_path("--metrics", &v)?;
                opts.metrics = Some(v);
            }
            "--gate" => {
                let v = value("--gate")?;
                opts.gate = v
                    .parse()
                    .ok()
                    .filter(|r: &f64| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| {
                        ArgError::Usage(format!("--gate needs a positive ratio, got '{v}'"))
                    })?;
                gate_set = true;
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            other => {
                return Err(ArgError::Usage(format!(
                    "bench takes no positional arguments, got '{other}'"
                )));
            }
        }
    }
    if gate_set && opts.baseline.is_none() {
        return Err(ArgError::Usage("--gate requires --baseline".into()));
    }
    Ok(opts)
}

/// Run the configured benchmark matrix; emit the table or the
/// `maglog-bench-v2` document; optionally gate against a baseline.
fn cmd_bench(cfg: &v2::BenchConfig, opts: &BenchOpts) -> Result<(), String> {
    let measurements = v2::run_config(cfg, |line| eprintln!("{line}"))?;
    let env = v2::environment(cfg);
    let doc = v2::render_v2(&env, &measurements);
    match opts.format {
        Format::Human => print!("{}", v2::render_human(&env, &measurements)),
        Format::Json => print!("{doc}"),
    }
    if let (Some(t), Some(out)) = (cfg.trace.as_ref(), opts.trace.as_deref()) {
        // The tracer rode the untimed instrumented pass of every cell, so
        // the timeline covers the whole matrix without touching the
        // medians.
        write_trace(t, "bench", out)?;
    }
    if let (Some(reg), Some(out)) = (cfg.metrics.as_ref(), opts.metrics.as_deref()) {
        // Likewise: the histograms rode the untimed instrumented runs,
        // labeled workload/size/strategy, without touching the samples.
        write_metrics(&reg.snapshot(), out)?;
    }
    if let Some(path) = &opts.out {
        std::fs::write(path, &doc).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = v2::parse_baseline(&text).map_err(|e| format!("{path}: {e}"))?;
        let outcome = v2::gate(&measurements, &baseline, opts.gate);
        eprint!("{}", v2::render_gate(&outcome, opts.gate));
        if !outcome.passed() {
            return Err(format!(
                "{} benchmark regression(s) against {path}",
                outcome.regressions.len()
            ));
        }
    }
    Ok(())
}

struct RunOpts {
    stats: bool,
    /// Dump the derivation of every tuple of this predicate after the run.
    explain: Option<String>,
    max_rounds: Option<usize>,
    optimize: Optimize,
    /// Answer one ground point query (`--query 's(a, b)'`).
    query: Option<String>,
    /// Worker count for the parallel evaluator (1 = sequential).
    parallel: usize,
    /// Write a `maglog-trace-v1` span timeline here.
    trace: Option<String>,
    /// Write an OpenMetrics 1.0 exposition here.
    metrics: Option<String>,
}

fn parse_run_opts(args: &[String]) -> Result<(RunOpts, Vec<String>), ArgError> {
    let mut opts = RunOpts {
        stats: false,
        explain: None,
        max_rounds: None,
        optimize: Optimize::default(),
        query: None,
        parallel: 1,
        trace: None,
        metrics: None,
    };
    let mut operands = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--stats" => opts.stats = true,
            "--explain" => opts.explain = Some(value("--explain")?),
            "--max-rounds" => {
                let v = value("--max-rounds")?;
                opts.max_rounds = Some(v.parse().map_err(|_| {
                    ArgError::Usage(format!("--max-rounds needs a number, got '{v}'"))
                })?);
            }
            "--optimize" => opts.optimize = parse_optimize(inline_value.as_deref())?,
            "--parallel" => opts.parallel = parse_parallel(inline_value.as_deref())?,
            "--query" => opts.query = Some(value("--query")?),
            "--trace" => {
                let v = value("--trace")?;
                check_out_path("--trace", &v)?;
                opts.trace = Some(v);
            }
            "--metrics" => {
                let v = value("--metrics")?;
                check_out_path("--metrics", &v)?;
                opts.metrics = Some(v);
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            _ => operands.push(arg.clone()),
        }
    }
    Ok((opts, operands))
}

#[derive(Clone, Copy, PartialEq)]
enum ExplainFormat {
    Human,
    Json,
    Dot,
}

struct ExplainOpts {
    why_not: bool,
    format: ExplainFormat,
    depth: usize,
}

fn parse_explain_opts(args: &[String]) -> Result<(ExplainOpts, Vec<String>), ArgError> {
    let mut opts = ExplainOpts {
        why_not: false,
        format: ExplainFormat::Human,
        depth: 8,
    };
    let mut operands = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--why-not" => opts.why_not = true,
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => ExplainFormat::Human,
                    "json" => ExplainFormat::Json,
                    "dot" => ExplainFormat::Dot,
                    other => {
                        return Err(ArgError::Usage(format!("unknown format '{other}'")))
                    }
                };
            }
            "--depth" => {
                let v = value("--depth")?;
                opts.depth = v.parse().map_err(|_| {
                    ArgError::Usage(format!("--depth needs a number, got '{v}'"))
                })?;
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            _ => operands.push(arg.clone()),
        }
    }
    Ok((opts, operands))
}

fn load(path: &str) -> Result<Program, String> {
    let src = read_source(path)?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// The long-form description of a lint code, as printed by `maglog check
/// --explain MAGxxxx`. The text comes from [`Code::explain`], the one
/// table shared with `docs/lint-codes.md`.
fn explain_code(code: Code) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{}: {}", code, code.title());
    let _ = writeln!(out, "default severity: {}", code.default_severity().label());
    let _ = writeln!(out, "reference: {}", code.paper_ref());
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", code.explain());
    if let Some(help) = code.help() {
        let _ = writeln!(out);
        let _ = writeln!(out, "help: {help}");
    }
    out
}

fn cmd_check(path: &str, opts: &CheckOpts) -> Result<(), String> {
    let src = read_source(path)?;
    let chk: SourceCheck = check_source(&src, &opts.config);

    match opts.format {
        Format::Json => {
            print!("{}", render_json(&src, path, &chk.diagnostics));
        }
        Format::Human => {
            // Legacy battery summary first (when the battery ran), then the
            // span-carrying diagnostics.
            if let (Some(program), Some(report)) = (&chk.program, &chk.report) {
                print!("{}", report.summary(program));
            }
            if !chk.diagnostics.is_empty() {
                println!();
                print!("{}", render_human(&src, path, &chk.diagnostics));
            }
            if let Some(report) = &chk.report {
                if report.evaluable() {
                    println!("verdict: evaluable (unique minimal model exists)");
                } else if chk.deny_count() == 0 {
                    println!("verdict: not evaluable, but all findings are allowed");
                }
            }
        }
    }

    match chk.deny_count() {
        0 => Ok(()),
        _ if chk.report.is_some() => Err("program is not certified monotonic".into()),
        n => Err(format!("{path}: {n} error(s)")),
    }
}

/// One `run` pipeline phase's wall clock and allocation traffic
/// (cumulative-allocation delta, so freed memory still counts as work).
struct Phase {
    name: &'static str,
    secs: f64,
    alloc_bytes: usize,
}

fn run_phase<T>(
    phases: &mut Vec<Phase>,
    tracer: Option<&Tracer>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let start = std::time::Instant::now();
    let before = alloc::total_allocated_bytes();
    if let Some(t) = tracer {
        t.begin(MAIN_LANE, "phase", NameRef::Static(name));
    }
    let out = f();
    if let Some(t) = tracer {
        t.end(MAIN_LANE, "phase", NameRef::Static(name));
    }
    phases.push(Phase {
        name,
        secs: start.elapsed().as_secs_f64(),
        alloc_bytes: alloc::total_allocated_bytes().saturating_sub(before),
    });
    out
}

/// Render and write a `--trace` timeline, with a stderr note mirroring
/// `bench --out`'s convention.
fn write_trace(tracer: &Tracer, label: &str, path: &str) -> Result<(), String> {
    let json = tracer.render_chrome_json(label);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    let dropped = tracer.events_dropped();
    let drop_note = if dropped > 0 {
        format!(", {dropped} dropped at the buffer cap")
    } else {
        String::new()
    };
    eprintln!(
        "-- trace: wrote {path} ({} event(s){drop_note})",
        tracer.events_recorded()
    );
    Ok(())
}

/// Render and write a `--metrics` OpenMetrics exposition, with a stderr
/// note mirroring `--trace`'s convention. Like the trace, this runs even
/// when evaluation failed, so aborted runs can be diagnosed.
fn write_metrics(set: &MetricSet, path: &str) -> Result<(), String> {
    let text = set.render_openmetrics();
    std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("-- metrics: wrote {path} ({} sample(s))", set.samples().len());
    Ok(())
}

/// Anchor the allocator counter track at t0, so even a run that aborts
/// before its first round produces a validator-clean document.
fn trace_heap_anchor(t: &Tracer) {
    t.counter(
        MAIN_LANE,
        NameRef::Static("heap"),
        vec![
            ("live", alloc::current_bytes() as u64),
            ("peak", alloc::peak_bytes() as u64),
        ],
    );
}

fn cmd_run(path: &str, preds: &[String], opts: &RunOpts) -> Result<(), String> {
    let mut phases = Vec::new();
    let tracer = opts.trace.as_ref().map(|_| Tracer::new());
    let tr = tracer.as_ref();
    if let Some(t) = tr {
        trace_heap_anchor(t);
    }
    let program = run_phase(&mut phases, tr, "parse", || load(path))?;
    if opts.stats {
        // Evaluation doesn't need the static battery, but the phase split
        // should report what the full check-then-run pipeline costs.
        run_phase(&mut phases, tr, "analyze", || {
            std::hint::black_box(maglog::analysis::check_program(&program));
        });
    }
    let mut eval_options = EvalOptions::default();
    if let Some(max_rounds) = opts.max_rounds {
        eval_options.max_rounds = max_rounds;
    }
    eval_options.optimize = opts.optimize;
    eval_options.workers = opts.parallel;
    let goal = opts
        .query
        .as_deref()
        .map(|q| parse_goal(&program, q))
        .transpose()?;
    let engine = run_phase(&mut phases, tr, "plan", || {
        MonotonicEngine::with_options(&program, eval_options)
    });
    let mut provenance = None;
    // Histogram recorder for `--metrics`: rides every sink-driven eval
    // path as a fanout arm (by `&mut`, so it can be finished after the
    // run). `--explain`'s provenance walk takes no sink, so that path
    // writes a bare exposition.
    let mut hist = opts
        .metrics
        .as_ref()
        .map(|_| HistogramSink::new(&program, &[("strategy", "seminaive")]));
    let eval_result: Result<(Model, Option<String>), String> =
        run_phase(&mut phases, tr, "eval", || -> Result<_, String> {
            if opts.stats {
                let mut sink = Fanout(
                    Fanout(
                        tr.map(|t| SpanSink::new(&program, t.clone())),
                        MetricsSink::new(&program, Strategy::SemiNaive),
                    ),
                    &mut hist,
                );
                let model = match &goal {
                    Some(goal) => engine.evaluate_goal_with_sink(&Edb::new(), goal, &mut sink),
                    None => engine.evaluate_with_sink(&Edb::new(), &mut sink),
                }
                .map_err(|e| e.to_string())?;
                Ok((model, Some(sink.0 .1.finish().render_human())))
            } else if opts.explain.is_some() {
                // Provenance capture runs its own walk; the phase spans
                // still bracket it, but per-rule spans are not recorded.
                let (model, prov) = engine
                    .evaluate_with_provenance(&Edb::new())
                    .map_err(|e| e.to_string())?;
                provenance = Some(prov);
                Ok((model, None))
            } else if let Some(t) = tr {
                let mut sink = Fanout(SpanSink::new(&program, t.clone()), &mut hist);
                let model = match &goal {
                    Some(goal) => engine.evaluate_goal_with_sink(&Edb::new(), goal, &mut sink),
                    None => engine.evaluate_with_sink(&Edb::new(), &mut sink),
                }
                .map_err(|e| e.to_string())?;
                Ok((model, None))
            } else if hist.is_some() {
                let model = match &goal {
                    Some(goal) => engine.evaluate_goal_with_sink(&Edb::new(), goal, &mut hist),
                    None => engine.evaluate_with_sink(&Edb::new(), &mut hist),
                }
                .map_err(|e| e.to_string())?;
                Ok((model, None))
            } else if let Some(goal) = &goal {
                Ok((
                    engine
                        .evaluate_goal(&Edb::new(), goal)
                        .map_err(|e| e.to_string())?,
                    None,
                ))
            } else {
                Ok((engine.evaluate(&Edb::new()).map_err(|e| e.to_string())?, None))
            }
        });
    // Dump the timeline even when evaluation failed: the renderer closes
    // the spans an aborted run left open, so a non-terminating run's
    // trace shows exactly where the rounds went.
    if let (Some(t), Some(out)) = (tr, opts.trace.as_deref()) {
        write_trace(t, path, out)?;
    }
    // Same contract for the metrics: whatever the histograms saw before
    // the abort still gets written.
    if let Some(out) = opts.metrics.as_deref() {
        let set = hist.take().map(HistogramSink::finish).unwrap_or_default();
        write_metrics(&set, out)?;
    }
    let (model, report) = eval_result?;
    if let Some(goal) = &goal {
        // Answer the point query directly from the computed model. Under
        // `--optimize=demand` only the goal's derivation cone was
        // evaluated, so the full-model dump would be misleading — print
        // the queried fact only.
        let name = program.pred_name(goal.pred);
        match model
            .interp()
            .relation(goal.pred)
            .and_then(|rel| rel.get(&goal.key))
        {
            Some(cost) => {
                let mut parts: Vec<String> =
                    goal.key.0.iter().map(|v| v.display(&program)).collect();
                if let Some(c) = cost {
                    parts.push(c.display(&program));
                }
                println!("{name}({}).", parts.join(", "));
            }
            None => {
                let parts: Vec<String> =
                    goal.key.0.iter().map(|v| v.display(&program)).collect();
                println!("{name}({}) is not in the model.", parts.join(", "));
            }
        }
    } else if preds.is_empty() {
        println!("{}", model.render(&program));
    } else {
        for pred in preds {
            for (key, cost) in model.tuples_of(&program, pred) {
                let mut parts: Vec<String> =
                    key.iter().map(|v| v.display(&program)).collect();
                if let Some(c) = cost {
                    parts.push(c.display(&program));
                }
                println!("{pred}({})", parts.join(", "));
            }
        }
    }
    let per_component = if model.stats().rounds.len() > 1 {
        format!(" ({})", model.rounds_breakdown())
    } else {
        String::new()
    };
    eprintln!(
        "-- {} atoms, {} rounds{}, {} firings",
        model.interp().size(),
        model.total_rounds(),
        per_component,
        model.stats().firings
    );
    for line in &model.stats().optimizations {
        eprintln!("-- optimize: {line}");
    }
    if model.stats().pruned > 0 {
        eprintln!(
            "-- optimize: {} derivation(s) pruned",
            model.stats().pruned
        );
    }
    if opts.stats {
        let parts: Vec<String> = phases
            .iter()
            .map(|p| {
                format!(
                    "{} {} / {}",
                    p.name,
                    maglog::bench::fmt_secs(p.secs),
                    fmt_bytes(p.alloc_bytes as u64)
                )
            })
            .collect();
        eprintln!("-- phases: {}", parts.join(", "));
    }
    if let Some(report) = report {
        eprint!("{report}");
    }
    if let Some(pred_name) = &opts.explain {
        let pred = program
            .find_pred(pred_name)
            .ok_or_else(|| format!("--explain: unknown predicate '{pred_name}'"))?;
        // `--stats` evaluated with a metrics sink; rerun with the capture on.
        let prov = match provenance {
            Some(p) => p,
            None => {
                engine
                    .evaluate_with_provenance(&Edb::new())
                    .map_err(|e| e.to_string())?
                    .1
            }
        };
        eprintln!(
            "-- provenance store: ~{}",
            fmt_bytes(prov.heap_bytes() as u64)
        );
        println!("-- derivations of {pred_name} --");
        for (key, _cost) in model.tuples_of(&program, pred_name) {
            let tuple = Tuple::new(key);
            let node = explain_tree(&program, &prov, model.interp(), pred, &tuple, 2);
            print!("{}", render_explain_human(&node));
        }
    }
    Ok(())
}

/// Explain one goal fact: WHY it was derived (derivation tree with
/// aggregate witnesses) or — with `--why-not` — why it was not.
fn cmd_explain_goal(path: &str, goal_text: &str, opts: &ExplainOpts) -> Result<(), String> {
    let program = load(path)?;
    let goal = parse_goal(&program, goal_text)?;
    if opts.why_not {
        if opts.format == ExplainFormat::Dot {
            return Err("--format=dot is not supported with --why-not".into());
        }
        let model = MonotonicEngine::new(&program)
            .evaluate(&Edb::new())
            .map_err(|e| e.to_string())?;
        let report = why_not(&program, model.interp(), &goal);
        match opts.format {
            ExplainFormat::Human => print!("{}", render_why_not_human(&report)),
            ExplainFormat::Json => print!("{}", render_why_not_json(path, &report)),
            ExplainFormat::Dot => unreachable!("rejected above"),
        }
        return Ok(());
    }
    let (model, prov) = MonotonicEngine::new(&program)
        .evaluate_with_provenance(&Edb::new())
        .map_err(|e| e.to_string())?;
    let node = explain_tree(&program, &prov, model.interp(), goal.pred, &goal.key, opts.depth);
    match opts.format {
        ExplainFormat::Human => print!("{}", render_explain_human(&node)),
        ExplainFormat::Json => {
            print!("{}", render_explain_json(path, goal_text, &node, opts.depth))
        }
        ExplainFormat::Dot => print!("{}", render_explain_dot(&node)),
    }
    Ok(())
}

/// Evaluate under one or all strategies with profiling sinks, then render
/// the reports (human trace + summary, or the `maglog-profile-v1` JSON).
fn cmd_profile(path: &str, opts: &ProfileOpts) -> Result<(), String> {
    let program = load(path)?;
    let tracer = opts.trace.as_ref().map(|_| Tracer::new());
    if let Some(t) = tracer.as_ref() {
        trace_heap_anchor(t);
    }
    // `--metrics`/`--listen` both want histogram recording; `--listen`
    // additionally binds the live endpoint before any evaluation runs,
    // so scrapes during the fixpoint see round-barrier snapshots.
    let want_hist = opts.metrics.is_some() || opts.listen.is_some();
    let registry = opts.listen.as_ref().map(|_| Registry::new());
    let server = match (&opts.listen, &registry) {
        (Some(addr), Some(reg)) => {
            let srv = MetricsServer::bind(addr, reg.clone())
                .map_err(|e| format!("--listen {addr}: {e}"))?;
            eprintln!("-- metrics: serving http://{}/metrics", srv.local_addr());
            Some(srv)
        }
        _ => None,
    };
    let mut all_metrics = MetricSet::new();
    let strategies: Vec<Strategy> = match opts.strategy {
        Some(s) => vec![s],
        None => vec![Strategy::Naive, Strategy::SemiNaive, Strategy::Greedy],
    };
    let mut reports = Vec::new();
    for strategy in strategies {
        let engine = MonotonicEngine::with_options(
            &program,
            EvalOptions {
                strategy,
                optimize: opts.optimize,
                workers: opts.parallel,
                ..Default::default()
            },
        );
        // One top-level span per strategy, so the strategies are easy to
        // tell apart in the timeline when all three are profiled.
        let span = tracer
            .as_ref()
            .map(|t| t.intern(&format!("eval[{}]", strategy.name())));
        if let (Some(t), Some(name)) = (tracer.as_ref(), span) {
            t.begin(MAIN_LANE, "phase", name);
        }
        let hist = want_hist.then(|| {
            let h = HistogramSink::new(&program, &[("strategy", strategy.name())]);
            match &registry {
                Some(reg) => h.publish_to(reg.clone()),
                None => h,
            }
        });
        let mut sink = Fanout(
            tracer.as_ref().map(|t| SpanSink::new(&program, t.clone())),
            Fanout(
                Fanout(TraceSink::new(&program), MetricsSink::new(&program, strategy)),
                hist,
            ),
        );
        // Scope the allocator peak to this strategy's evaluation, so each
        // report's alloc_peak_bytes is a per-strategy high-water mark.
        alloc::reset_peak();
        let eval_result = engine
            .evaluate_with_sink(&Edb::new(), &mut sink)
            .map_err(|e| format!("[{}] {e}", strategy.name()));
        if let (Some(t), Some(name)) = (tracer.as_ref(), span) {
            t.end(MAIN_LANE, "phase", name);
        }
        let Fanout(_span, Fanout(Fanout(trace, metrics), hist)) = sink;
        let hist_set = hist.map(HistogramSink::finish);
        if let Some(set) = &hist_set {
            all_metrics.merge(set);
        }
        if let Err(e) = eval_result {
            // Still dump the partial timeline and exposition; the aborted
            // evaluation is usually exactly what they are wanted for.
            if let (Some(t), Some(out)) = (tracer.as_ref(), opts.trace.as_deref()) {
                let _ = write_trace(t, path, out);
            }
            if let Some(out) = opts.metrics.as_deref() {
                let _ = write_metrics(&all_metrics, out);
            }
            return Err(e);
        }
        let mut report = metrics.finish();
        if let Some(set) = &hist_set {
            report.histograms = set.blocks();
        }
        match opts.format {
            Format::Human => {
                print!("{}", trace.into_string());
                print!("{}", report.render_human());
                println!();
            }
            Format::Json => reports.push(report),
        }
    }
    if opts.format == Format::Json {
        print!("{}", render_profile_json(path, &reports));
    }
    if let (Some(t), Some(out)) = (tracer.as_ref(), opts.trace.as_deref()) {
        if opts.format == Format::Human {
            let widest: Vec<String> = t
                .top_spans(5)
                .into_iter()
                .map(|s| format!("{} {}", s.name, maglog::bench::fmt_secs(s.nanos as f64 / 1e9)))
                .collect();
            if !widest.is_empty() {
                println!("widest spans: {}", widest.join(", "));
            }
        }
        write_trace(t, path, out)?;
    }
    if let Some(out) = opts.metrics.as_deref() {
        write_metrics(&all_metrics, out)?;
    }
    if let Some(server) = server {
        // Keep the endpoint up after the report: the registry holds every
        // strategy's final snapshot, so dashboards (and the CI probe) can
        // scrape at leisure. Ctrl-C ends the process.
        eprintln!(
            "-- metrics: still serving http://{}/metrics (interrupt to exit)",
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }
    Ok(())
}

/// Check a `--trace` dump against the `maglog-trace-v1` contract: every
/// lane's B/E spans balance, timestamps are monotone per lane, lanes are
/// named, and the heap counter was sampled. CI runs this over every
/// example program's trace.
struct DiffOpts {
    format: Format,
    /// Exit 1 when any regression's direction-corrected factor exceeds
    /// this ratio.
    gate: Option<f64>,
}

fn parse_diff_opts(args: &[String]) -> Result<(DiffOpts, Vec<String>), ArgError> {
    let mut opts = DiffOpts {
        format: Format::Human,
        gate: None,
    };
    let mut operands = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, ArgError> {
            match inline_value.clone().or_else(|| it.next().cloned()) {
                Some(v) => Ok(v),
                None => Err(ArgError::Usage(format!("{name} requires a value"))),
            }
        };
        match flag {
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => {
                        return Err(ArgError::Usage(format!("unknown format '{other}'")))
                    }
                };
            }
            "--gate" => {
                let v = value("--gate")?;
                opts.gate = Some(
                    v.parse()
                        .ok()
                        .filter(|r: &f64| r.is_finite() && *r > 0.0)
                        .ok_or_else(|| {
                            ArgError::Usage(format!("--gate needs a positive ratio, got '{v}'"))
                        })?,
                );
            }
            f if f.starts_with('-') => {
                return Err(ArgError::Usage(format!("unknown flag '{f}'")));
            }
            _ => operands.push(arg.clone()),
        }
    }
    Ok((opts, operands))
}

/// Diff two telemetry captures. Returns the exit code directly because
/// the contract distinguishes gate failures (1) from unreadable or
/// kind-mismatched documents (2) — and the latter should not dump the
/// whole usage blob the way a flag typo does.
fn cmd_diff(before_path: &str, after_path: &str, opts: &DiffOpts) -> ExitCode {
    let load = |path: &str| -> Result<Document, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_document(&text).map_err(|e| format!("{path}: {e}"))
    };
    let report = match (|| {
        let before = load(before_path)?;
        let after = load(after_path)?;
        diff_documents(&before, &after)
    })() {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Human => print!("{}", report.render_human(before_path, after_path)),
        Format::Json => println!("{}", report.to_json(before_path, after_path)),
    }
    if let Some(threshold) = opts.gate {
        let failures = report.gate_failures(threshold);
        if !failures.is_empty() {
            eprintln!(
                "diff gate: FAIL ({} regression(s) beyond {threshold}x)",
                failures.len()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("diff gate: OK (threshold {threshold}x)");
    }
    ExitCode::SUCCESS
}

/// Fold a `maglog-trace-v1` timeline into collapsed-stack lines for
/// flame-graph tools. Validation runs first, so this accepts exactly
/// what `trace-validate` accepts.
fn cmd_trace_flame(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let collapsed = render_collapsed_stacks(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{collapsed}");
    Ok(())
}

fn cmd_trace_validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let check = validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid {TRACE_SCHEMA}: {} event(s), {} lane(s), {} heap sample(s), {} dropped",
        check.events, check.lanes, check.heap_samples, check.dropped
    );
    Ok(())
}

/// Check a `--metrics` exposition against the bundled OpenMetrics 1.0
/// parser: metadata shape, family contiguity, histogram bucket
/// invariants, label syntax, and the mandatory `# EOF` terminator. CI
/// runs this over every example program's exposition.
fn cmd_metrics_validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let exp = parse_openmetrics(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid OpenMetrics 1.0: {} family(ies), {} sample(s)",
        exp.families.len(),
        exp.total_samples()
    );
    Ok(())
}

fn cmd_compare(path: &str) -> Result<(), String> {
    let program = load(path)?;
    let model = MonotonicEngine::new(&program)
        .evaluate(&Edb::new())
        .map_err(|e| e.to_string())?;
    let ks = ks_well_founded(&program, &Edb::new())?;
    println!(
        "minimal model: {} atoms;  K&S WFS: {} true / {} false / {} undefined",
        model.interp().size(),
        ks.count(AtomStatus::True),
        ks.count(AtomStatus::False),
        ks.count(AtomStatus::Undefined),
    );
    println!(
        "  engine:  {} round(s), {} firing(s)",
        model.total_rounds(),
        model.stats().firings,
    );
    println!("  K&S WFS: {}", ks.stats.render());
    // Show where the minimal model decides what K&S cannot.
    let mut shown = 0;
    for pred in program.all_preds() {
        let name = program.pred_name(pred);
        for key in ks.undefined_keys(&program, &name) {
            if shown >= 20 {
                println!("  ... (more undefined atoms elided)");
                return Ok(());
            }
            let keys: Vec<String> = key.0.iter().map(|v| v.display(&program)).collect();
            let keyrefs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let ours = model
                .cost_of(&program, &name, &keyrefs)
                .map(|v| format!("true ({v})"))
                .unwrap_or_else(|| {
                    if model.holds(&program, &name, &keyrefs) {
                        "true".into()
                    } else {
                        "false".into()
                    }
                });
            println!(
                "  {name}({}) — K&S: undefined, minimal model: {ours}",
                keys.join(", ")
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  (K&S is two-valued here; Proposition 6.1 says the models agree)");
    }
    Ok(())
}

fn cmd_explain(path: &str) -> Result<(), String> {
    let program = load(path)?;
    println!("{} rules, {} constraints, {} inline facts",
        program.rules.len(), program.constraints.len(), program.facts.len());
    for (i, comp) in components(&program).iter().enumerate() {
        let preds: Vec<String> = comp.preds.iter().map(|p| program.pred_name(*p)).collect();
        let ldb: Vec<String> = comp
            .ldb_preds(&program)
            .iter()
            .map(|p| program.pred_name(*p))
            .collect();
        println!(
            "component {i}: CDB {{{}}} over LDB {{{}}}{}{}",
            preds.join(", "),
            ldb.join(", "),
            if comp.recursive_aggregation {
                "  [recursion through aggregation]"
            } else {
                ""
            },
            if comp.recursive_negation {
                "  [recursion through negation]"
            } else {
                ""
            },
        );
        for &ri in &comp.rule_indices {
            println!("    {}", program.display_rule(&program.rules[ri]));
        }
    }
    Ok(())
}
